#include "backend/codegen.hh"

#include <algorithm>
#include <map>

namespace lego
{

namespace
{

/** Row-major strides for a tensor shape. */
IntVec
rowMajorStrides(const IntVec &shape)
{
    IntVec st(shape.size(), 1);
    for (int i = int(shape.size()) - 2; i >= 0; i--)
        st[size_t(i)] = st[size_t(i) + 1] * shape[size_t(i) + 1];
    return st;
}

/**
 * Affine address expression for (config, port tensor, fu): the flat
 * row-major element index as a function of the timestamp digits.
 */
AffineAddr
addrExprFor(const Workload &w, int tensor, const DataflowMapping &map,
            int fu)
{
    const DataMapping &dm = w.mappings.at(size_t(tensor));
    IntVec strides = rowMajorStrides(w.tensorShape(tensor));
    // addr = strides . (M_D (M_TI t + M_SI s) + bias)
    //      = (strides^T M_D M_TI) t + strides . (M_D M_SI s + bias).
    IntMat md_ti = dm.m * map.mTI;
    IntVec coef(size_t(map.tDims()), 0);
    for (int j = 0; j < map.tDims(); j++)
        for (int r = 0; r < dm.m.rows(); r++)
            coef[size_t(j)] += strides[size_t(r)] * md_ti.at(r, j);
    IntVec s = map.fuCoord(fu);
    IntVec base = dm.m * (map.mSI * s);
    if (!dm.bias.empty())
        base = addVec(base, dm.bias);
    Int bias = dot(strides, base);
    AffineAddr a;
    a.coefT = coef;
    a.bias = bias;
    a.valid = true;
    return a;
}

} // namespace

CodegenResult
codegen(const Adg &adg)
{
    const int nc = adg.numConfigs();
    const int num_fus = adg.numFus();
    const int num_ports = int(adg.inputPorts.size());

    CodegenResult res;
    res.dag = Dag(nc);
    Dag &dag = res.dag;

    // ---------------- control unit -----------------------------------
    {
        DagNode counter;
        counter.op = PrimOp::Counter;
        counter.name = "ctrl_counter";
        counter.width = 32;
        for (int c = 0; c < nc; c++)
            counter.radix.push_back(adg.configs[size_t(c)].map.rT);
        res.counter = dag.addNode(std::move(counter));
    }

    // Per-FU control tap, created lazily (only data nodes need one).
    std::vector<int> tap(size_t(num_fus), -1);
    auto tapFor = [&](int fu) {
        if (tap[size_t(fu)] >= 0)
            return tap[size_t(fu)];
        DagNode t;
        t.op = PrimOp::Tap;
        t.name = "tap_fu" + std::to_string(fu);
        t.fu = fu;
        t.width = 32;
        int id = dag.addNode(std::move(t));
        DagEdge e;
        e.from = res.counter;
        e.to = id;
        e.toPin = 0;
        e.width = 32;
        e.cfgDelay.assign(size_t(nc), 0);
        for (int c = 0; c < nc; c++) {
            const DataflowMapping &m = adg.configs[size_t(c)].map;
            e.cfgDelay[size_t(c)] = m.tbias(m.fuCoord(fu));
        }
        dag.addEdge(std::move(e));
        tap[size_t(fu)] = id;
        return id;
    };

    // Shared zero constant.
    int zero;
    {
        DagNode z;
        z.op = PrimOp::Const;
        z.name = "const_zero";
        z.constValue = 0;
        z.width = 1;
        zero = dag.addNode(std::move(z));
    }

    // ---------------- input operand paths -----------------------------
    res.operandMux.assign(size_t(num_ports),
                          std::vector<int>(size_t(num_fus), -1));
    res.memRead.assign(size_t(num_ports),
                       std::vector<int>(size_t(num_fus), -1));

    // Pass 1: create every operand mux node (peer edges need them).
    for (int p = 0; p < num_ports; p++) {
        for (int fu = 0; fu < num_fus; fu++) {
            DagNode mux;
            mux.op = PrimOp::Mux;
            mux.name =
                "op" + std::to_string(p) + "_fu" + std::to_string(fu);
            mux.fu = fu;
            mux.width = 8;
            mux.muxSel.assign(size_t(nc), -1);
            res.operandMux[size_t(p)][size_t(fu)] =
                dag.addNode(std::move(mux));
        }
    }

    // Pass 2: wire memory ports and peer edges into the muxes.
    for (int p = 0; p < num_ports; p++) {
        const PortPlan &plan = adg.inputPorts[size_t(p)];
        // Which configs make `fu` a data node for this port?
        std::vector<std::vector<int>> dn_configs{size_t(num_fus)};
        for (int c = 0; c < nc; c++)
            for (int fu : plan.dataNodes[size_t(c)])
                dn_configs[size_t(fu)].push_back(c);
        // Configs in which `fu` is fed by a FIFO (delay) link: its
        // operand needs the memory fallback outside the FIFO's valid
        // window, selected by a Valid comparator (the paper's data
        // valid/invalid control signal).
        std::vector<std::vector<int>> dly_configs{size_t(num_fus)};
        for (int c = 0; c < nc; c++) {
            if (plan.links[size_t(c)].empty())
                continue;
            for (int fu = 0; fu < num_fus; fu++)
                if (plan.links[size_t(c)][size_t(fu)].kind ==
                    FuLink::Kind::Delay)
                    dly_configs[size_t(fu)].push_back(c);
        }

        for (int fu = 0; fu < num_fus; fu++) {
            int mux = res.operandMux[size_t(p)][size_t(fu)];
            int next_pin = 0;

            // Dynamic-select pin first, when any config delay-feeds
            // this operand.
            if (!dly_configs[size_t(fu)].empty()) {
                DagNode vn;
                vn.op = PrimOp::Valid;
                vn.name = "vld_in" + std::to_string(p) + "_fu" +
                          std::to_string(fu);
                vn.fu = fu;
                vn.width = 1;
                vn.validDt.assign(size_t(nc), IntVec{});
                vn.radix.assign(size_t(nc), IntVec{});
                for (int c : dly_configs[size_t(fu)]) {
                    vn.validDt[size_t(c)] =
                        plan.links[size_t(c)][size_t(fu)].dt;
                    vn.radix[size_t(c)] = adg.configs[size_t(c)].map.rT;
                }
                int vid = dag.addNode(std::move(vn));
                DagEdge te;
                te.from = tapFor(fu);
                te.to = vid;
                te.toPin = 0;
                te.width = 32;
                dag.addEdge(std::move(te));

                dag.node(mux).selPin = 0;
                dag.node(mux).dynPins.assign(size_t(nc), {-1, -1});
                DagEdge se;
                se.from = vid;
                se.to = mux;
                se.toPin = next_pin++;
                se.width = 1;
                dag.addEdge(std::move(se));
            }

            const bool needs_mem = !dn_configs[size_t(fu)].empty() ||
                                   !dly_configs[size_t(fu)].empty();
            int mem_pin = -1;
            if (needs_mem) {
                // AddrGen + MemRead pinned to this FU.
                DagNode ag;
                ag.op = PrimOp::AddrGen;
                ag.name = "ag_in" + std::to_string(p) + "_fu" +
                          std::to_string(fu);
                ag.fu = fu;
                ag.width = 24;
                ag.addr.assign(size_t(nc), AffineAddr{});
                ag.radix.assign(size_t(nc), IntVec{});
                std::vector<int> mem_cfgs = dn_configs[size_t(fu)];
                mem_cfgs.insert(mem_cfgs.end(),
                                dly_configs[size_t(fu)].begin(),
                                dly_configs[size_t(fu)].end());
                for (int c : mem_cfgs) {
                    int tensor = adg.tensorOfPort(c, p, false);
                    ag.addr[size_t(c)] = addrExprFor(
                        *adg.configs[size_t(c)].workload, tensor,
                        adg.configs[size_t(c)].map, fu);
                    ag.radix[size_t(c)] =
                        adg.configs[size_t(c)].map.rT;
                }
                int agid = dag.addNode(std::move(ag));
                DagEdge te;
                te.from = tapFor(fu);
                te.to = agid;
                te.toPin = 0;
                te.width = 32;
                dag.addEdge(std::move(te));

                DagNode mr;
                mr.op = PrimOp::MemRead;
                mr.name = "rd_in" + std::to_string(p) + "_fu" +
                          std::to_string(fu);
                mr.fu = fu;
                mr.memPort = p;
                mr.width = 8;
                int mrid = dag.addNode(std::move(mr));
                res.memRead[size_t(p)][size_t(fu)] = mrid;
                DagEdge ae;
                ae.from = agid;
                ae.to = mrid;
                ae.toPin = 0;
                ae.width = 24;
                dag.addEdge(std::move(ae));

                DagEdge de;
                de.from = mrid;
                de.to = mux;
                de.toPin = next_pin;
                de.width = 8;
                de.active.assign(size_t(nc), false);
                for (int c : mem_cfgs)
                    de.active[size_t(c)] = true;
                for (int c : dn_configs[size_t(fu)])
                    dag.node(mux).muxSel[size_t(c)] = next_pin;
                mem_pin = next_pin;
                dag.addEdge(std::move(de));
                next_pin++;
            }

            // Peer edges: group by source FU so one physical wire
            // serves every config using that source.
            struct PeerUse
            {
                int config;
                Int depth;
                bool isDelay;
            };
            std::map<int, std::vector<PeerUse>> peers;
            for (int c = 0; c < nc; c++) {
                if (plan.links[size_t(c)].empty())
                    continue;
                const FuLink &l = plan.links[size_t(c)][size_t(fu)];
                if (l.kind == FuLink::Kind::Memory || l.peer < 0)
                    continue;
                peers[l.peer].push_back(
                    {c, l.depth, l.kind == FuLink::Kind::Delay});
            }
            for (const auto &[peer, uses] : peers) {
                DagEdge pe;
                pe.from = res.operandMux[size_t(p)][size_t(peer)];
                pe.to = mux;
                pe.toPin = next_pin;
                pe.width = 8;
                pe.active.assign(size_t(nc), false);
                pe.cfgDelay.assign(size_t(nc), 0);
                for (const PeerUse &u : uses) {
                    pe.active[size_t(u.config)] = true;
                    pe.cfgDelay[size_t(u.config)] = u.depth;
                    if (u.isDelay) {
                        // Dynamic select: FIFO data when valid, else
                        // the memory fallback pin.
                        dag.node(mux).muxSel[size_t(u.config)] = -2;
                        dag.node(mux).dynPins[size_t(u.config)] =
                            {next_pin, mem_pin};
                    } else {
                        dag.node(mux).muxSel[size_t(u.config)] =
                            next_pin;
                    }
                }
                dag.addEdge(std::move(pe));
                next_pin++;
            }
        }
    }

    // ---------------- compute body ------------------------------------
    std::vector<int> body(size_t(num_fus), -1);
    for (int fu = 0; fu < num_fus; fu++) {
        auto opIn = [&](int p) {
            return res.operandMux[size_t(p)][size_t(fu)];
        };
        auto connect = [&](int from, int to, int pin, int width) {
            DagEdge e;
            e.from = from;
            e.to = to;
            e.toPin = pin;
            e.width = width;
            dag.addEdge(std::move(e));
        };
        int out = -1;
        switch (adg.fuOp) {
          case OpKind::Mac: {
            DagNode mul;
            mul.op = PrimOp::Mul;
            mul.name = "mul_fu" + std::to_string(fu);
            mul.fu = fu;
            mul.width = 16;
            out = dag.addNode(std::move(mul));
            connect(opIn(0), out, 0, 8);
            connect(opIn(1), out, 1, 8);
            break;
          }
          case OpKind::MulMulAdd: {
            DagNode m1;
            m1.op = PrimOp::Mul;
            m1.name = "mul1_fu" + std::to_string(fu);
            m1.fu = fu;
            m1.width = 16;
            int m1id = dag.addNode(std::move(m1));
            connect(opIn(0), m1id, 0, 8);
            connect(opIn(1), m1id, 1, 8);
            DagNode m2;
            m2.op = PrimOp::Mul;
            m2.name = "mul2_fu" + std::to_string(fu);
            m2.fu = fu;
            m2.width = 24;
            out = dag.addNode(std::move(m2));
            connect(m1id, out, 0, 16);
            connect(opIn(2), out, 1, 8);
            break;
          }
          case OpKind::MulShiftAdd: {
            DagNode mul;
            mul.op = PrimOp::Mul;
            mul.name = "mul_fu" + std::to_string(fu);
            mul.fu = fu;
            mul.width = 16;
            int mid = dag.addNode(std::move(mul));
            connect(opIn(0), mid, 0, 8);
            connect(opIn(1), mid, 1, 8);
            DagNode sh;
            sh.op = PrimOp::Shl;
            sh.name = "shl_fu" + std::to_string(fu);
            sh.fu = fu;
            sh.width = 20;
            out = dag.addNode(std::move(sh));
            connect(mid, out, 0, 16);
            connect(opIn(2), out, 1, 4);
            break;
          }
          case OpKind::MaxReduce: {
            // Body is the operand itself; reduction via Max chain.
            out = opIn(0);
            break;
          }
        }
        body[size_t(fu)] = out;
    }

    // ---------------- partial-sum cascade ------------------------------
    // Incoming spatial-reduction edges per FU (from the output plan).
    const PortPlan &oplan = adg.outputPort;
    std::vector<std::map<int, std::vector<std::pair<int, Int>>>> yin{
        size_t(num_fus)};
    for (int c = 0; c < nc; c++) {
        if (oplan.links[size_t(c)].empty())
            continue;
        for (int fu = 0; fu < num_fus; fu++) {
            const FuLink &l = oplan.links[size_t(c)][size_t(fu)];
            if (l.kind == FuLink::Kind::Memory || l.peer < 0)
                continue;
            // fu sends its psum to l.peer.
            yin[size_t(l.peer)][fu].emplace_back(c, l.depth);
        }
    }

    res.psum.assign(size_t(num_fus), -1);
    // Two passes again: create the final psum node chain lazily. We
    // need psum[peer] edges, so build cascades after reserving adder
    // chains: process FUs in topological order of the y-forwarding
    // graph (acyclic per config; the union is acyclic for planned
    // trees, else we fall back to edge insertion after creation).
    // Simpler: create all Add cascades first with placeholder pins,
    // wiring psum sources afterwards.
    struct PendingEdge
    {
        int fromFu;
        int to;
        int pin;
        std::vector<std::pair<int, Int>> uses;
    };
    std::vector<PendingEdge> pending;

    for (int fu = 0; fu < num_fus; fu++) {
        int current = body[size_t(fu)];
        bool is_max = adg.fuOp == OpKind::MaxReduce;
        int pin_width = is_max ? 8 : 24;
        for (const auto &[src, uses] : yin[size_t(fu)]) {
            // Gate each incoming partial with a mux against zero.
            DagNode g;
            g.op = PrimOp::Mux;
            g.name = "yin_fu" + std::to_string(fu) + "_s" +
                     std::to_string(src);
            g.fu = fu;
            g.width = pin_width;
            g.muxSel.assign(size_t(nc), 0); // Default: zero.
            int gid = dag.addNode(std::move(g));
            DagEdge ze;
            ze.from = zero;
            ze.to = gid;
            ze.toPin = 0;
            ze.width = 1;
            dag.addEdge(std::move(ze));
            for (auto [c, depth] : uses)
                dag.node(gid).muxSel[size_t(c)] = 1;
            pending.push_back({src, gid, 1, uses});

            DagNode add;
            add.op = is_max ? PrimOp::Max : PrimOp::Add;
            add.name = (is_max ? "max_fu" : "acc_fu") +
                       std::to_string(fu) + "_s" + std::to_string(src);
            add.fu = fu;
            add.width = pin_width;
            int aid = dag.addNode(std::move(add));
            DagEdge e1;
            e1.from = current;
            e1.to = aid;
            e1.toPin = 0;
            e1.width = pin_width;
            dag.addEdge(std::move(e1));
            DagEdge e2;
            e2.from = gid;
            e2.to = aid;
            e2.toPin = 1;
            e2.width = pin_width;
            dag.addEdge(std::move(e2));
            current = aid;
        }
        res.psum[size_t(fu)] = current;
    }
    for (const PendingEdge &pe : pending) {
        DagEdge e;
        e.from = res.psum[size_t(pe.fromFu)];
        e.to = pe.to;
        e.toPin = pe.pin;
        e.width = dag.node(pe.to).width;
        e.active.assign(size_t(nc), false);
        e.cfgDelay.assign(size_t(nc), 0);
        for (auto [c, depth] : pe.uses) {
            e.active[size_t(c)] = true;
            e.cfgDelay[size_t(c)] = depth;
        }
        dag.addEdge(std::move(e));
    }

    // ---------------- output commits -----------------------------------
    res.memWrite.assign(size_t(num_fus), -1);
    std::vector<std::vector<int>> commit_configs{size_t(num_fus)};
    for (int c = 0; c < nc; c++)
        for (int fu : oplan.dataNodes[size_t(c)])
            commit_configs[size_t(fu)].push_back(c);

    for (int fu = 0; fu < num_fus; fu++) {
        if (commit_configs[size_t(fu)].empty())
            continue;
        DagNode ag;
        ag.op = PrimOp::AddrGen;
        ag.name = "ag_out_fu" + std::to_string(fu);
        ag.fu = fu;
        ag.width = 24;
        ag.addr.assign(size_t(nc), AffineAddr{});
        ag.radix.assign(size_t(nc), IntVec{});
        for (int c : commit_configs[size_t(fu)]) {
            int tensor = adg.tensorOfPort(c, 0, true);
            ag.addr[size_t(c)] = addrExprFor(
                *adg.configs[size_t(c)].workload, tensor,
                adg.configs[size_t(c)].map, fu);
            ag.radix[size_t(c)] = adg.configs[size_t(c)].map.rT;
        }
        int agid = dag.addNode(std::move(ag));
        DagEdge te;
        te.from = tapFor(fu);
        te.to = agid;
        te.toPin = 0;
        te.width = 32;
        dag.addEdge(std::move(te));

        DagNode mw;
        mw.op = PrimOp::MemWrite;
        mw.name = "wr_out_fu" + std::to_string(fu);
        mw.fu = fu;
        mw.memPort = -1;
        mw.accumulate = true;
        mw.maxAccum = adg.fuOp == OpKind::MaxReduce;
        mw.width = 24;
        int mwid = dag.addNode(std::move(mw));
        res.memWrite[size_t(fu)] = mwid;

        DagEdge de;
        de.from = res.psum[size_t(fu)];
        de.to = mwid;
        de.toPin = 0;
        de.width = 24;
        de.active.assign(size_t(nc), false);
        for (int c : commit_configs[size_t(fu)])
            de.active[size_t(c)] = true;
        dag.addEdge(std::move(de));
        DagEdge ae;
        ae.from = agid;
        ae.to = mwid;
        ae.toPin = 1;
        ae.width = 24;
        dag.addEdge(std::move(ae));
    }

    dag.validate();
    return res;
}

} // namespace lego
