/**
 * @file
 * Bit-width inference (paper Section V-D): forward interval analysis
 * over every config's active subgraph determines the value range of
 * each signal; node and edge widths shrink to the bits actually
 * needed, which directly reduces register and arithmetic cost.
 */

#ifndef LEGO_BACKEND_BITWIDTH_HH
#define LEGO_BACKEND_BITWIDTH_HH

#include "backend/dag.hh"

namespace lego
{

/** Pass statistics. */
struct BitwidthStats
{
    Int bitsBefore = 0; //!< Sum of edge widths before inference.
    Int bitsAfter = 0;
};

/**
 * Infer and apply widths. `dataBits` is the input operand precision
 * (the paper evaluates 8-bit MACs).
 */
BitwidthStats inferBitwidths(Dag &dag, int dataBits = 8);

} // namespace lego

#endif // LEGO_BACKEND_BITWIDTH_HH
