/**
 * @file
 * End-to-end network scheduler: maps every layer of a model via the
 * mapping search tool and aggregates the run summary (the numbers
 * behind Fig. 11/12 and Tables II-V).
 *
 * The scheduler is frontier-composing: each layer contributes a
 * bounded mapping Pareto frontier (latency x energy), and
 * composeSchedule() picks one point per layer under a model-level
 * energy (or latency) budget with a deterministic convex-hull greedy
 * sweep. The default options (K = 1, no budget) reduce exactly to
 * the classical best-latency-per-layer schedule.
 */

#ifndef LEGO_MAPPER_SCHEDULE_HH
#define LEGO_MAPPER_SCHEDULE_HH

#include "dse/pareto.hh"
#include "mapper/mapper.hh"
#include "mapper/segment.hh"
#include "model/models.hh"

namespace lego
{

/** Frontier width and model-level budget of the composer. */
struct ComposeOptions
{
    /** Kept points per layer frontier (>= 1). */
    std::size_t frontierK = 1;
    /**
     * > 0: minimize total latency subject to total energy <= budget
     * (pJ). Takes precedence over the latency budget.
     */
    double energyBudgetPj = 0;
    /**
     * > 0 (with energyBudgetPj == 0): minimize total energy subject
     * to total latency <= budget (cycles).
     */
    double latencyBudgetCycles = 0;
    /** Inter-layer pipelining knobs (default off: the composition is
     *  layer-valued and byte-identical to the classical path). */
    SegmentOptions segment;
};

/** What the composer did (attached to every ScheduleResult). */
struct ComposeInfo
{
    bool budgeted = false; //!< A nonzero budget was in force.
    /** Budget met? (Always true when unbudgeted.) When false the
     *  schedule is the extreme composition nearest the budget. */
    bool feasible = true;
    /** Frontier steps taken away from the unconstrained extreme. */
    std::size_t swaps = 0;
    /** Total frontier points kept across layers. */
    std::size_t frontierPoints = 0;
};

/** Per-layer decisions plus aggregate results. */
struct ScheduleResult
{
    RunSummary summary;
    std::vector<MappedLayer> perLayer; //!< Aligned with model.layers.
    /** Per-layer mapping frontiers (aligned with model.layers; each
     *  holds >= 1 point, the selected one among them). */
    std::vector<dse::MappingFrontier> perLayerFrontier;
    ComposeInfo compose;
    /**
     * Segment-valued view of the schedule. Empty on the classical
     * path (segmentation off); otherwise ordered segments covering
     * every layer, with pipelined segments carrying their stage
     * breakdown and pipelined cost. Members of a pipelined segment
     * have their perLayer entry overridden with the per-stage
     * mapping/result; the summary accounts the segment's pipelined
     * cost once at the segment's position.
     */
    std::vector<Segment> segments;
};

/** Map and simulate a full model on a hardware instance (best
 *  latency per layer — the classical schedule). */
ScheduleResult scheduleModel(const HardwareConfig &hw, const Model &m);

/** Frontier-composing schedule under a model-level budget. */
ScheduleResult scheduleModel(const HardwareConfig &hw, const Model &m,
                             const ComposeOptions &opt);

/**
 * Compose a schedule out of per-layer mapping frontiers (one per
 * model layer, in layer order). Selection: the per-layer convex
 * hulls of the (cycles, energy) frontiers are walked greedily by
 * marginal efficiency until the budget holds — deterministic, and
 * monotone in the budget (a tighter energy budget never lowers the
 * composed latency; a tighter latency budget never lowers energy).
 * With no budget every layer keeps its best-latency point, which
 * reproduces the scalar scheduler bit-for-bit.
 */
ScheduleResult composeSchedule(const Model &m,
                               std::vector<dse::MappingFrontier> fronts,
                               const ComposeOptions &opt);

/**
 * Segment-valued composition: run the frontier composition above,
 * then apply `plan` on top — members of each pipelined segment have
 * their per-layer decision replaced by the segment's stage
 * mapping/result and the summary is re-accumulated in one ordered
 * pass charging each pipelined segment its pipelined cost. The
 * all-singleton plan applies zero overrides and re-accumulates the
 * identical per-layer sequence, so it is bit-identical to the
 * layer-valued composeSchedule (test-pinned).
 */
ScheduleResult composeSchedule(const Model &m,
                               std::vector<dse::MappingFrontier> fronts,
                               const ComposeOptions &opt,
                               const SegmentPlan &plan);

/**
 * Zoo-level composition: one composeSchedule per model, under the
 * same ComposeOptions (the budget applies per model, not pooled
 * across the zoo). `fronts` is aligned with `zoo` (one frontier
 * vector per model, e.g. from Evaluator::mapZooFrontier, so
 * shape-identical layers of different models shared one search).
 * This is the serve loop's request-answering entry point.
 */
std::vector<ScheduleResult>
composeZoo(const std::vector<const Model *> &zoo,
           std::vector<std::vector<dse::MappingFrontier>> fronts,
           const ComposeOptions &opt);

/**
 * Bit-exact equality of two schedule results: aggregate summary plus
 * every per-layer mapping and simulated result. THE equivalence
 * check behind the determinism contracts (naive-vs-optimized,
 * 1-vs-N workers, cold-vs-warm serving) — shared so every client
 * compares the same fields.
 */
bool sameSchedule(const ScheduleResult &a, const ScheduleResult &b);

} // namespace lego

#endif // LEGO_MAPPER_SCHEDULE_HH
