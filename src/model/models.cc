#include "model/models.hh"

namespace lego
{

namespace
{

/** Transformer encoder block (BERT/ViT style), appended in place. */
void
encoderBlock(Model &m, const std::string &tag, Int seq, Int dim,
             Int heads, Int ffn, int repeat)
{
    Int dk = dim / heads;
    m.layers.push_back(
        linear(tag + ".qkv", seq, dim, 3 * dim, repeat));
    m.layers.push_back(matmul(tag + ".scores", seq, dk, seq,
                              repeat * int(heads)));
    m.layers.push_back(
        ppu(tag + ".softmax", PpuOp::Softmax, seq * seq * heads,
            repeat));
    m.layers.push_back(
        matmul(tag + ".av", seq, seq, dk, repeat * int(heads)));
    m.layers.push_back(linear(tag + ".proj", seq, dim, dim, repeat));
    m.layers.push_back(
        ppu(tag + ".ln1", PpuOp::LayerNorm, seq * dim, repeat));
    m.layers.push_back(linear(tag + ".ffn1", seq, dim, ffn, repeat));
    m.layers.push_back(
        ppu(tag + ".gelu", PpuOp::Gelu, seq * ffn, repeat));
    m.layers.push_back(linear(tag + ".ffn2", seq, ffn, dim, repeat));
    m.layers.push_back(
        ppu(tag + ".ln2", PpuOp::LayerNorm, seq * dim, repeat));
}

/** Decode-time (single token) transformer block with KV-cache. */
void
decoderBlock(Model &m, const std::string &tag, Int batch, Int ctx,
             Int dim, Int heads, Int ffn, int repeat,
             bool amortized)
{
    Int dk = dim / heads;
    m.layers.push_back(
        linear(tag + ".qkv", batch, dim, 3 * dim, repeat, amortized));
    // Attention against the KV cache: activation-activation GEMMs.
    // Every sequence owns its cache, so the K/V operand traffic can
    // never amortize across the batch: model per-sequence matmuls.
    m.layers.push_back(matmul(tag + ".scores", 1, dk, ctx,
                              repeat * int(heads) * int(batch)));
    m.layers.push_back(
        ppu(tag + ".softmax", PpuOp::Softmax, batch * ctx * heads,
            repeat));
    m.layers.push_back(matmul(tag + ".av", 1, ctx, dk,
                              repeat * int(heads) * int(batch)));
    m.layers.push_back(
        linear(tag + ".proj", batch, dim, dim, repeat, amortized));
    m.layers.push_back(
        ppu(tag + ".ln", PpuOp::LayerNorm, batch * dim, repeat));
    m.layers.push_back(
        linear(tag + ".ffn1", batch, dim, ffn, repeat, amortized));
    m.layers.push_back(
        ppu(tag + ".act", PpuOp::Gelu, batch * ffn, repeat));
    m.layers.push_back(
        linear(tag + ".ffn2", batch, ffn, dim, repeat, amortized));
}

/** MobileNetV2 inverted residual block. */
void
mbv2Block(Model &m, const std::string &tag, Int cin, Int cout,
          Int ohw, Int expand, Int stride, int repeat)
{
    Int mid = cin * expand;
    if (expand != 1)
        m.layers.push_back(conv(tag + ".expand", cin, mid,
                                ohw * stride, 1, 1, repeat));
    m.layers.push_back(
        dwconv(tag + ".dw", mid, ohw, 3, stride, repeat));
    m.layers.push_back(
        ppu(tag + ".relu6", PpuOp::Relu, mid * ohw * ohw, repeat));
    m.layers.push_back(
        conv(tag + ".project", mid, cout, ohw, 1, 1, repeat));
    if (cin == cout && stride == 1)
        m.layers.push_back(
            ppu(tag + ".res", PpuOp::EltAdd, cout * ohw * ohw,
                repeat));
}

/** ResNet50 bottleneck block. */
void
bottleneck(Model &m, const std::string &tag, Int cin, Int mid,
           Int ohw, Int stride, int repeat)
{
    m.layers.push_back(
        conv(tag + ".a", cin, mid, ohw, 1, 1, repeat));
    m.layers.push_back(conv(tag + ".b", mid, mid, ohw, 3, 1, repeat));
    m.layers.push_back(
        conv(tag + ".c", mid, mid * 4, ohw, 1, 1, repeat));
    m.layers.push_back(ppu(tag + ".relu", PpuOp::Relu,
                           mid * 4 * ohw * ohw, repeat));
    m.layers.push_back(ppu(tag + ".res", PpuOp::EltAdd,
                           mid * 4 * ohw * ohw, repeat));
    (void)stride;
}

} // namespace

Model
makeAlexNet()
{
    Model m;
    m.name = "AlexNet";
    m.layers = {
        conv("conv1", 3, 64, 55, 11, 4),
        ppu("relu1", PpuOp::Relu, 64 * 55 * 55),
        ppu("pool1", PpuOp::Pool, 64 * 27 * 27),
        conv("conv2", 64, 192, 27, 5),
        ppu("pool2", PpuOp::Pool, 192 * 13 * 13),
        conv("conv3", 192, 384, 13, 3),
        conv("conv4", 384, 256, 13, 3),
        conv("conv5", 256, 256, 13, 3),
        ppu("pool5", PpuOp::Pool, 256 * 6 * 6),
        linear("fc6", 1, 9216, 4096),
        linear("fc7", 1, 4096, 4096),
        linear("fc8", 1, 4096, 1000),
    };
    return m;
}

Model
makeMobileNetV2()
{
    Model m;
    m.name = "MobileNetV2";
    m.layers.push_back(conv("stem", 3, 32, 112, 3, 2));
    mbv2Block(m, "b1", 32, 16, 112, 1, 1, 1);
    mbv2Block(m, "b2", 16, 24, 56, 6, 2, 1);
    mbv2Block(m, "b2r", 24, 24, 56, 6, 1, 1);
    mbv2Block(m, "b3", 24, 32, 28, 6, 2, 1);
    mbv2Block(m, "b3r", 32, 32, 28, 6, 1, 2);
    mbv2Block(m, "b4", 32, 64, 14, 6, 2, 1);
    mbv2Block(m, "b4r", 64, 64, 14, 6, 1, 3);
    mbv2Block(m, "b5", 64, 96, 14, 6, 1, 1);
    mbv2Block(m, "b5r", 96, 96, 14, 6, 1, 2);
    mbv2Block(m, "b6", 96, 160, 7, 6, 2, 1);
    mbv2Block(m, "b6r", 160, 160, 7, 6, 1, 2);
    mbv2Block(m, "b7", 160, 320, 7, 6, 1, 1);
    m.layers.push_back(conv("head", 320, 1280, 7, 1));
    m.layers.push_back(linear("fc", 1, 1280, 1000));
    return m;
}

Model
makeResNet50()
{
    Model m;
    m.name = "ResNet50";
    m.layers.push_back(conv("stem", 3, 64, 112, 7, 2));
    m.layers.push_back(ppu("pool", PpuOp::Pool, 64 * 56 * 56));
    bottleneck(m, "s1", 64, 64, 56, 1, 3);
    bottleneck(m, "s2", 256, 128, 28, 2, 4);
    bottleneck(m, "s3", 512, 256, 14, 2, 6);
    bottleneck(m, "s4", 1024, 512, 7, 2, 3);
    m.layers.push_back(linear("fc", 1, 2048, 1000));
    return m;
}

Model
makeEfficientNetV2()
{
    // EfficientNetV2-S at 384x384 (fused-MBConv early, MBConv late).
    Model m;
    m.name = "EfficientNetV2";
    m.layers.push_back(conv("stem", 3, 24, 192, 3, 2));
    m.layers.push_back(conv("f1", 24, 24, 192, 3, 1, 2));
    m.layers.push_back(conv("f2", 24, 48, 96, 3, 2));
    m.layers.push_back(conv("f2r", 48, 48, 96, 3, 1, 3));
    m.layers.push_back(conv("f3", 48, 64, 48, 3, 2));
    m.layers.push_back(conv("f3r", 64, 64, 48, 3, 1, 3));
    for (int r = 0; r < 6; r++) {
        mbv2Block(m, "m4_" + std::to_string(r), 64, 128, 24, 4,
                  r == 0 ? 2 : 1, 1);
    }
    for (int r = 0; r < 9; r++)
        mbv2Block(m, "m5_" + std::to_string(r), 128, 160, 24, 6, 1, 1);
    for (int r = 0; r < 15; r++) {
        mbv2Block(m, "m6_" + std::to_string(r), 160, 256, 12, 6,
                  r == 0 ? 2 : 1, 1);
    }
    m.layers.push_back(conv("head", 256, 1280, 12, 1));
    m.layers.push_back(linear("fc", 1, 1280, 1000));
    return m;
}

Model
makeBert(Int seq)
{
    Model m;
    m.name = "BERT";
    encoderBlock(m, "enc", seq, 768, 12, 3072, 12);
    return m;
}

Model
makeGpt2Decode(Int prompt)
{
    Model m;
    m.name = "GPT-2";
    // One-token decode over a cached 1000-token prompt, 12 layers.
    decoderBlock(m, "dec", 1, prompt, 768, 12, 3072, 12, false);
    m.layers.push_back(linear("lm_head", 1, 768, 50257));
    return m;
}

Model
makeCoAtNet()
{
    // CoAtNet-0: conv stages then transformer stages at 224^2.
    Model m;
    m.name = "CoAtNet";
    m.layers.push_back(conv("stem", 3, 64, 112, 3, 2));
    mbv2Block(m, "s1", 64, 96, 56, 4, 2, 2);
    mbv2Block(m, "s2", 96, 192, 28, 4, 2, 3);
    encoderBlock(m, "s3", 14 * 14, 384, 8, 1536, 5);
    encoderBlock(m, "s4", 7 * 7, 768, 16, 3072, 2);
    m.layers.push_back(linear("fc", 1, 768, 1000));
    return m;
}

Model
makeLeNet()
{
    Model m;
    m.name = "LeNet";
    m.layers = {
        conv("c1", 1, 6, 28, 5),
        ppu("p1", PpuOp::Pool, 6 * 14 * 14),
        conv("c2", 6, 16, 10, 5),
        ppu("p2", PpuOp::Pool, 16 * 5 * 5),
        linear("f3", 1, 400, 120),
        linear("f4", 1, 120, 84),
        linear("f5", 1, 84, 10),
    };
    return m;
}

Model
makeDdpm()
{
    // DDPM UNet at 64x64 latents: conv-heavy, mid attention.
    Model m;
    m.name = "DDPM";
    m.layers.push_back(conv("in", 3, 128, 64, 3));
    m.layers.push_back(conv("d1", 128, 128, 64, 3, 1, 4));
    m.layers.push_back(conv("d2", 128, 256, 32, 3, 1, 4));
    m.layers.push_back(conv("d3", 256, 256, 16, 3, 1, 4));
    encoderBlock(m, "mid", 16 * 16, 256, 4, 1024, 1);
    m.layers.push_back(conv("d4", 256, 512, 8, 3, 1, 4));
    m.layers.push_back(conv("u4", 512, 256, 8, 3, 1, 4));
    m.layers.push_back(conv("u3", 256, 256, 16, 3, 1, 6));
    m.layers.push_back(conv("u2", 256, 128, 32, 3, 1, 6));
    m.layers.push_back(conv("u1", 128, 128, 64, 3, 1, 6));
    m.layers.push_back(conv("out", 128, 3, 64, 3));
    return m;
}

Model
makeStableDiffusionUNet()
{
    // SD 1.x UNet at 64x64 latents with cross-attention blocks.
    Model m;
    m.name = "StableDiffusion";
    m.layers.push_back(conv("in", 4, 320, 64, 3));
    m.layers.push_back(conv("d1", 320, 320, 64, 3, 1, 2));
    encoderBlock(m, "t1", 64 * 64, 320, 8, 1280, 2);
    m.layers.push_back(conv("d2", 320, 640, 32, 3, 1, 2));
    encoderBlock(m, "t2", 32 * 32, 640, 8, 2560, 2);
    m.layers.push_back(conv("d3", 640, 1280, 16, 3, 1, 2));
    encoderBlock(m, "t3", 16 * 16, 1280, 8, 5120, 2);
    m.layers.push_back(conv("mid", 1280, 1280, 8, 3, 1, 2));
    m.layers.push_back(conv("u3", 1280, 640, 16, 3, 1, 3));
    m.layers.push_back(conv("u2", 640, 320, 32, 3, 1, 3));
    m.layers.push_back(conv("u1", 320, 320, 64, 3, 1, 3));
    m.layers.push_back(conv("out", 320, 4, 64, 3));
    return m;
}

Model
makeLlama7b(Int batch, Int context)
{
    Model m;
    m.name = "LLaMA-7B bs=" + std::to_string(batch);
    // 32 layers, dim 4096, SwiGLU FFN (gate+up+down, 11008); decode
    // one token per sequence.
    decoderBlock(m, "dec", batch, context, 4096, 32, 11008, 32,
                 batch > 1);
    // The SwiGLU gate projection (third FFN matrix per layer).
    m.layers.push_back(
        linear("dec.ffn_gate", batch, 4096, 11008, 32, batch > 1));
    m.layers.push_back(
        linear("lm_head", batch, 4096, 32000, 1, batch > 1));
    return m;
}

std::vector<Model>
fig11Models()
{
    return {makeAlexNet(),  makeMobileNetV2(),     makeResNet50(),
            makeEfficientNetV2(), makeBert(16),    makeGpt2Decode(1000),
            makeCoAtNet()};
}

} // namespace lego
