/**
 * @file
 * LEGO public API umbrella header.
 *
 * Typical flow:
 *
 *   using namespace lego;
 *   Workload w = makeGemm(64, 64, 64);
 *   DataflowSpec spec = makeSimpleSpec(w, "kj", {{"k",8},{"j",8}},
 *                                      true);
 *   Adg adg = generateArchitecture({{&w, buildDataflow(w, spec)}});
 *   CodegenResult gen = codegen(adg);
 *   BackendReport rep = runBackend(gen);
 *   std::string rtl = emitVerilog(gen, "my_accel");
 *   bool ok = verifyAgainstReference(gen, adg, 0, 42);
 *
 * End-to-end evaluation flow:
 *
 *   HardwareConfig hw;                       // 16x16, 256 KB, ...
 *   ScheduleResult r = scheduleModel(hw, makeResNet50());
 *   double gops = r.summary.gops(hw.freqGhz);
 *
 * Design-space exploration flow (see src/dse/README.md):
 *
 *   dse::DseOptions opt;                     // threads, seed, ...
 *   opt.threads = 8;
 *   dse::DseEngine engine(opt);              // memoized cost cache
 *   dse::DseResult d = engine.explore(dse::defaultSpace(),
 *                                     makeResNet50());
 *   const dse::DsePoint *fast = d.archive.bestLatency();
 *
 * Serving flow (see src/serve/README.md):
 *
 *   serve::ServeOptions sopt;                // hw + engine knobs
 *   sopt.dse.cachePath = "lego.cache";       // warm across restarts
 *   serve::ServeLoop loop(sopt);
 *   loop.submitLine("{\"models\": [\"bert\"], \"k\": 8}");
 *   loop.drain();
 *   serve::ServeResponse r = loop.responses().front();
 *   loop.shutdown();                         // flush the cache
 */

#ifndef LEGO_LEGO_HH
#define LEGO_LEGO_HH

#include "backend/cost.hh"
#include "backend/interp.hh"
#include "backend/passes.hh"
#include "backend/verilog.hh"
#include "baseline/comparators.hh"
#include "baseline/gemmini.hh"
#include "core/dataflow.hh"
#include "core/reference.hh"
#include "core/workload.hh"
#include "dse/dse.hh"
#include "frontend/frontend.hh"
#include "mapper/schedule.hh"
#include "model/models.hh"
#include "serve/serve_loop.hh"
#include "sim/arch_config.hh"

#endif // LEGO_LEGO_HH
