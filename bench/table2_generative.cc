/**
 * @file
 * Reproduces Table II: large generative models on LEGO-ICOC-1K
 * (1024 FUs, 576 KB buffers, 32 PPUs, 32 GB/s). Paper rows: DDPM
 * 92.9% util / 1903 GOP/s / 3165 GOP/s/W; Stable Diffusion 80.2% /
 * 1642 / 2731; LLaMA-7B bs=1 3.1% / 63 / 105; bs=32 42.9% / 878 /
 * 1461. On-chip envelope: 3.95 mm^2, 601 mW.
 */

#include <cstdio>

#include "lego.hh"

using namespace lego;

int
main()
{
    HardwareConfig hw;
    hw.name = "LEGO-ICOC-1K";
    hw.rows = hw.cols = 32;
    hw.l1Kb = 576;
    hw.numPpus = 32;
    hw.dram.bandwidthGBs = 32.0;
    hw.dataflows = {DataflowTag::ICOC, DataflowTag::MN};

    ChipCost cc = archCost(hw);
    std::printf("=== Table II: generative models on LEGO-ICOC-1K "
                "===\n");
    std::printf("on-chip: %.2f mm^2 (paper 3.95), %.0f mW (paper "
                "601)\n", cc.totalAreaMm2(), cc.totalPowerMw());

    struct Row
    {
        Model model;
        double paperUtil, paperGops, paperEff;
    };
    Row rows[] = {
        {makeDdpm(), 92.9, 1903, 3165},
        {makeStableDiffusionUNet(), 80.2, 1642, 2731},
        {makeLlama7b(1), 3.1, 63, 105},
        {makeLlama7b(32), 42.9, 878, 1461},
    };

    std::printf("%-22s | %16s | %18s | %18s\n", "model",
                "util (paper)", "GOP/s (paper)", "GOP/s/W (paper)");
    for (Row &r : rows) {
        ScheduleResult res = scheduleModel(hw, r.model);
        double gops = res.summary.gops(hw.freqGhz);
        double util = gops / hw.peakGops();
        double eff = gops / (cc.totalPowerMw() / 1e3);
        std::printf("%-22s | %6.1f%% (%5.1f%%) | %7.0f (%7.0f) | "
                    "%7.0f (%7.0f)\n", r.model.name.c_str(),
                    100 * util, r.paperUtil, gops, r.paperGops, eff,
                    r.paperEff);
    }
    return 0;
}
