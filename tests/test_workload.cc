/**
 * @file
 * Unit tests for workloads, dataflow mappings, and the reference
 * executor, including the paper's Fig. 3 / Fig. 4 setups.
 */

#include <gtest/gtest.h>

#include "core/dataflow.hh"
#include "core/reference.hh"
#include "core/workload.hh"

namespace lego
{
namespace
{

TEST(Workload, GemmShapes)
{
    Workload w = makeGemm(4, 6, 8);
    EXPECT_EQ(w.tensorShape(w.tensorIndex("X")), (IntVec{4, 8}));
    EXPECT_EQ(w.tensorShape(w.tensorIndex("W")), (IntVec{8, 6}));
    EXPECT_EQ(w.tensorShape(w.tensorIndex("Y")), (IntVec{4, 6}));
    EXPECT_EQ(w.iterationCount(), 4 * 6 * 8);
    EXPECT_EQ(w.totalOps(), 2 * 4 * 6 * 8);
    EXPECT_EQ(w.outputTensor(), w.tensorIndex("Y"));
}

TEST(Workload, ConvShapes)
{
    Workload w = makeConv2d(1, 3, 8, 5, 5, 3, 3);
    // ih = oh + kh in [0, 5+3-2] -> extent 7.
    EXPECT_EQ(w.tensorShape(w.tensorIndex("X")), (IntVec{1, 3, 7, 7}));
    EXPECT_EQ(w.tensorShape(w.tensorIndex("W")), (IntVec{8, 3, 3, 3}));
    EXPECT_EQ(w.tensorShape(w.tensorIndex("Y")), (IntVec{1, 8, 5, 5}));
}

TEST(Workload, MttkrpHasThreeInputs)
{
    Workload w = makeMttkrp(4, 5, 6, 7);
    EXPECT_EQ(w.inputTensors().size(), 3u);
    EXPECT_EQ(w.op, OpKind::MulMulAdd);
}

TEST(Workload, ReferenceGemmMatchesManual)
{
    Workload w = makeGemm(3, 4, 5);
    TensorSet ts = makeInputs(w, 42);
    runReference(w, ts);
    const auto &x = ts[w.tensorIndex("X")];
    const auto &wt = ts[w.tensorIndex("W")];
    const auto &y = ts[w.tensorIndex("Y")];
    for (Int i = 0; i < 3; i++) {
        for (Int j = 0; j < 4; j++) {
            Int acc = 0;
            for (Int k = 0; k < 5; k++)
                acc += x.at({i, k}) * wt.at({k, j});
            EXPECT_EQ(y.at({i, j}), acc);
        }
    }
}

/** Build the paper's Fig. 3 GEMM dataflow (parallel k, j; systolic). */
DataflowMapping
fig3Mapping(const Workload &w, Int r1i, Int r0j, Int r0k, Int r0i,
            Int pk, Int pj)
{
    DataflowSpec spec;
    spec.name = "gemm_kj_systolic";
    spec.temporal = {{"i", r1i}, {"j", r0j}, {"k", r0k}, {"i", r0i}};
    spec.spatial = {{"k", pk}, {"j", pj}};
    spec.cflow = {1, 1};
    return buildDataflow(w, spec);
}

TEST(Dataflow, Fig3GemmMapping)
{
    Workload w = makeGemm(10, 6, 8); // i=10=2*5, j=6=3*2, k=8=4*2.
    DataflowMapping m = fig3Mapping(w, 2, 3, 4, 5, 2, 2);

    // The purple matrix of Fig. 3(b):
    // i = R0_i * t1_i + t0_i; j = P_j * t0_j + s_j; k = P_k * t0_k + s_k.
    IntMat expect_ti = {{5, 0, 0, 1},
                        {0, 2, 0, 0},
                        {0, 0, 2, 0}};
    IntMat expect_si = {{0, 0}, {0, 1}, {1, 0}};
    EXPECT_EQ(m.mTI, expect_ti);
    EXPECT_EQ(m.mSI, expect_si);
    EXPECT_EQ(m.rT, (IntVec{2, 3, 4, 5}));
    EXPECT_EQ(m.rS, (IntVec{2, 2}));
    EXPECT_TRUE(mappingIsBijective(w, m));

    // t_bias = s . c (Eq. 4).
    EXPECT_EQ(m.tbias({0, 0}), 0);
    EXPECT_EQ(m.tbias({1, 1}), 2);
}

TEST(Dataflow, Fig4ConvMapping)
{
    // Conv2D parallelizing oh and ow (ShiDianNao), c = (0,0).
    Workload w = makeConv2d(1, 2, 2, 4, 4, 3, 3);
    DataflowSpec spec;
    spec.name = "conv_ohow";
    spec.temporal = {{"n", 1}, {"oc", 2}, {"ic", 2}, {"oh", 2},
                     {"ow", 2}, {"kh", 3}, {"kw", 3}};
    spec.spatial = {{"ow", 2}, {"oh", 2}};
    spec.cflow = {0, 0};
    DataflowMapping m = buildDataflow(w, spec);
    EXPECT_TRUE(mappingIsBijective(w, m));
    EXPECT_EQ(m.numFUs(), 4);
    EXPECT_EQ(m.tbias({1, 1}), 0);
}

TEST(Dataflow, MappedExecutionMatchesReference)
{
    Workload w = makeGemm(10, 6, 8);
    DataflowMapping m = fig3Mapping(w, 2, 3, 4, 5, 2, 2);

    TensorSet a = makeInputs(w, 7);
    TensorSet b = makeInputs(w, 7);
    runReference(w, a);
    runMapped(w, m, b);
    EXPECT_EQ(a[w.outputTensor()], b[w.outputTensor()]);
}

TEST(Dataflow, SimpleSpecDefaults)
{
    Workload w = makeGemm(8, 8, 8);
    DataflowSpec spec =
        makeSimpleSpec(w, "gemm_ij", {{"i", 4}, {"j", 4}}, false);
    DataflowMapping m = buildDataflow(w, spec);
    EXPECT_TRUE(mappingIsBijective(w, m));
    EXPECT_EQ(m.numFUs(), 16);
    EXPECT_EQ(m.cflow, (IntVec{0, 0}));
}

TEST(Dataflow, BadFactorizationFails)
{
    Workload w = makeGemm(8, 8, 8);
    EXPECT_THROW(
        makeSimpleSpec(w, "bad", {{"i", 3}}, false), FatalError);
    DataflowSpec spec;
    spec.name = "bad2";
    spec.temporal = {{"i", 8}, {"j", 8}, {"k", 3}};
    spec.spatial = {};
    spec.cflow = {};
    EXPECT_THROW(buildDataflow(w, spec), FatalError);
}

TEST(Dataflow, AttentionPairShapesAgree)
{
    Workload score = makeAttentionScore(8, 4);
    Workload ctx = makeAttentionContext(8, 4);
    // Score output S[i,j] has the same shape as context input A[i,j].
    EXPECT_EQ(score.tensorShape(score.tensorIndex("S")),
              ctx.tensorShape(ctx.tensorIndex("A")));
}

TEST(Reference, DepthwiseConv)
{
    Workload w = makeDepthwiseConv2d(1, 3, 4, 4, 3, 3);
    TensorSet ts = makeInputs(w, 3);
    runReference(w, ts);
    const auto &x = ts[w.tensorIndex("X")];
    const auto &wt = ts[w.tensorIndex("W")];
    const auto &y = ts[w.tensorIndex("Y")];
    Int acc = 0;
    for (Int kh = 0; kh < 3; kh++)
        for (Int kw = 0; kw < 3; kw++)
            acc += x.at({0, 1, 2 + kh, 1 + kw}) * wt.at({1, kh, kw});
    EXPECT_EQ(y.at({0, 1, 2, 1}), acc);
}

} // namespace
} // namespace lego
