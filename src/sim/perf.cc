#include "sim/perf.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace lego
{

namespace
{

/** eff(dim, P): fraction of P lanes busy when tiling dim over P. */
double
eff(Int dim, int p)
{
    if (dim <= 0 || p <= 0)
        return 1.0;
    Int tiles = ceilDiv(dim, p);
    return double(dim) / double(tiles * p);
}

/** Compute cycles and DRAM traffic of one mapping — the one cycle
 *  model shared by runLayerWithEff and the mappingCycles bound. */
struct CycleModel
{
    Int compute = 0; //!< Pipeline cycles incl. fill/drain.
    Int traffic = 0; //!< DRAM bytes moved.
    Int mem = 0;     //!< DRAM cycles for `traffic`.
};

CycleModel
cycleModel(const HardwareConfig &hw, const Layer &l, const Mapping &map,
           double spatialEff)
{
    CycleModel cm;
    const Int m = l.gemmM(), n = l.gemmN(), k = l.gemmK();

    // ---- compute cycles ------------------------------------------------
    double se = std::max(spatialEff, 1e-4);
    double ideal = double(l.macs()) / double(hw.totalFus());
    // Pipeline fill/drain per L1 tile.
    Int tm = std::min<Int>(map.tm, m);
    Int tn = std::min<Int>(map.tn, n);
    Int tk = std::min<Int>(map.tk, k);
    Int tiles = ceilDiv(m, tm) * ceilDiv(n, tn) * ceilDiv(k, tk);
    Int fill = (hw.rows + hw.cols + 8) * tiles;
    cm.compute = Int(std::ceil(ideal / se)) + fill;

    // ---- DRAM traffic --------------------------------------------------
    // Weights stream once per M-tile sweep; activations once per
    // N-tile sweep; outputs with partial-sum spills when K is tiled.
    Int wbytes = l.weightBytes();
    Int xbytes = l.inputBytes();
    Int obytes = l.outputBytes();
    Int reload_w = l.batchAmortized ? 1 : ceilDiv(m, tm);
    Int reload_x = ceilDiv(n, tn);
    // Window reuse keeps conv inputs at their true footprint; only
    // the N-tiling refetch multiplies it.
    cm.traffic = wbytes * reload_w + xbytes * reload_x +
                 obytes * (2 * ceilDiv(k, tk) - 1);
    cm.mem = dramCycles(hw.dram, cm.traffic, hw.freqGhz);
    return cm;
}

} // namespace

Int
mappingCycles(const HardwareConfig &hw, const Layer &l,
              const Mapping &map, double spatialEff)
{
    CycleModel cm = cycleModel(hw, l, map, spatialEff);
    return std::max(cm.compute, cm.mem);
}

Int
mappingComputeCycles(const HardwareConfig &hw, const Layer &l,
                     const Mapping &map, double spatialEff)
{
    return cycleModel(hw, l, map, spatialEff).compute;
}

Int
mappingTileCount(const Layer &l, const Mapping &map)
{
    const Int m = l.gemmM(), n = l.gemmN(), k = l.gemmK();
    const Int tm = std::min<Int>(map.tm, m);
    const Int tn = std::min<Int>(map.tn, n);
    const Int tk = std::min<Int>(map.tk, k);
    return ceilDiv(m, tm) * ceilDiv(n, tn) * ceilDiv(k, tk);
}

void
mappingCyclesBatch(const HardwareConfig &hw, const Layer &l,
                   const Mapping *maps, std::size_t count,
                   double spatialEff, Int *out)
{
    if (count <= 1) {
        // Scalar fallback: the reference path (also the degenerate
        // batch, where SoA staging is pure overhead).
        for (std::size_t i = 0; i < count; ++i)
            out[i] = mappingCycles(hw, l, maps[i], spatialEff);
        return;
    }

    // Per-layer constants hoisted out of the candidate loops — the
    // same quantities cycleModel derives per call.
    const Int m = l.gemmM(), n = l.gemmN(), k = l.gemmK();
    const double se = std::max(spatialEff, 1e-4);
    const Int idealCycles =
        Int(std::ceil(double(l.macs()) / double(hw.totalFus()) / se));
    const Int fillUnit = hw.rows + hw.cols + 8;
    const Int wbytes = l.weightBytes();
    const Int xbytes = l.inputBytes();
    const Int obytes = l.outputBytes();
    const bool amortized = l.batchAmortized;

    // SoA passes: each loop body is an independent iteration over
    // contiguous arrays (no calls, no branches beyond min/ceilDiv),
    // which the compiler can autovectorize.
    std::vector<Int> tilesArr(count), trafficArr(count);
    for (std::size_t i = 0; i < count; ++i) {
        const Int tm = std::min<Int>(maps[i].tm, m);
        const Int tn = std::min<Int>(maps[i].tn, n);
        const Int tk = std::min<Int>(maps[i].tk, k);
        const Int rm = ceilDiv(m, tm);
        const Int rn = ceilDiv(n, tn);
        const Int rk = ceilDiv(k, tk);
        tilesArr[i] = rm * rn * rk;
        trafficArr[i] = wbytes * (amortized ? Int(1) : rm) +
                        xbytes * rn + obytes * (2 * rk - 1);
    }
    for (std::size_t i = 0; i < count; ++i) {
        const Int compute = idealCycles + fillUnit * tilesArr[i];
        const Int mem = dramCycles(hw.dram, trafficArr[i], hw.freqGhz);
        out[i] = std::max(compute, mem);
    }

#ifndef NDEBUG
    // The batch must be bit-identical to the scalar reference.
    for (std::size_t i = 0; i < count; ++i)
        assert(out[i] == mappingCycles(hw, l, maps[i], spatialEff));
#endif
}

Int
cycleLowerBound(const HardwareConfig &hw, const Layer &l,
                double spatialEff)
{
    // Compute floor: every tiling pays the ideal MAC latency at this
    // dataflow's spatial efficiency plus at least one pipeline fill
    // (tiles >= 1 in cycleModel).
    double se = std::max(spatialEff, 1e-4);
    double ideal = double(l.macs()) / double(hw.totalFus());
    Int compute = Int(std::ceil(ideal / se)) + (hw.rows + hw.cols + 8);
    // Bandwidth floor: the reload factors of cycleModel are all >= 1,
    // so no tiling moves less than one pass of each operand.
    Int traffic =
        l.weightBytes() + l.inputBytes() + l.outputBytes();
    Int mem = dramCycles(hw.dram, traffic, hw.freqGhz);
    return std::max(compute, mem);
}

double
spatialEfficiency(const HardwareConfig &hw, const Layer &l,
                  DataflowTag df)
{
    const int r = hw.rows, c = hw.cols;
    switch (df) {
      case DataflowTag::MN:
        // Output pixels x output channels. Depthwise parallelizes
        // pixels x channels (the OH-OW-IC-OC switch the paper uses
        // on MobileNetV2's depthwise layers).
        if (l.kind == LayerKind::DwConv)
            return eff(l.oh * l.ow, r) * eff(l.ic, c);
        return eff(l.gemmM(), r) * eff(l.gemmN(), c);
      case DataflowTag::ICOC:
        // Input-channel x output-channel parallelism: K x N for the
        // GEMM view. Spatial reduction over the K lanes.
        if (l.kind == LayerKind::DwConv)
            return eff(l.kh * l.kw, r) * eff(l.ic, c) * 0.5;
        if (l.kind == LayerKind::Conv)
            return eff(l.ic, r) * eff(l.oc, c);
        return eff(l.k, r) * eff(l.nOut, c);
      case DataflowTag::OHOW:
        if (l.kind == LayerKind::Conv || l.kind == LayerKind::DwConv)
            return eff(l.oh, r) * eff(l.ow, c);
        return eff(l.gemmM(), r * c > 0 ? r : 1) / double(c);
      case DataflowTag::KHOH:
        if (l.kind == LayerKind::Conv || l.kind == LayerKind::DwConv)
            return eff(l.kh, r) * eff(l.oh, c) *
                   (double(l.kh) / double(r) < 0.3 ? 0.5 : 1.0);
        return eff(l.gemmK(), r) * eff(l.gemmM(), c) * 0.5;
    }
    return 0.0;
}

LayerResult
runLayer(const HardwareConfig &hw, const Layer &l, const Mapping &map)
{
    if (!l.isTensorOp())
        return runPpuLayer(hw, l);
    return runLayerWithEff(hw, l, map,
                           spatialEfficiency(hw, l, map.dataflow));
}

LayerResult
runLayerWithEff(const HardwareConfig &hw, const Layer &l,
                const Mapping &map, double spatialEff)
{
    LayerResult res;
    if (!l.isTensorOp())
        return runPpuLayer(hw, l);

    res.macs = l.macs();
    CycleModel cm = cycleModel(hw, l, map, spatialEff);
    Int traffic = cm.traffic;
    res.dramBytes = traffic;
    res.cycles = std::max(cm.compute, cm.mem);
    res.memoryBound = cm.mem > cm.compute;
    // Array utilization against the compute pipeline (memory stalls
    // are reported via memoryBound; the mapper uses this to break
    // bandwidth-bound ties toward the busier array).
    res.utilization = double(res.macs) / double(hw.totalFus()) /
                      std::max<double>(1.0, double(cm.compute));

    // ---- energy ---------------------------------------------------------
    ChipCost cc = archCost(hw);
    const double mac_pj = 0.28 * double(hw.dataBits) / 8.0;
    // L1 accesses amortized by spatial reuse along the array.
    double l1_accesses = double(res.macs) *
                         (1.0 / double(hw.cols) + 1.0 / double(hw.rows));
    double l1_pj = l1_accesses * cc.sramReadPj / 8.0;
    double dram_pj = dramEnergyPj(hw.dram, traffic);
    double leak_pj = cc.totalPowerMw() * 0.25 * 1e3 *
                     double(res.cycles) / hw.freqGhz * 1e-3;
    res.energyPj = double(res.macs) * mac_pj + l1_pj + dram_pj +
                   leak_pj;
    return res;
}

LayerResult
runPpuLayer(const HardwareConfig &hw, const Layer &l)
{
    LayerResult res;
    res.cycles = ppuCycles(l.ppu, l.elems, hw.numPpus);
    res.energyPj = ppuEnergyPj(l.ppu, l.elems);
    res.dramBytes = 0; // In-place in the output buffers.
    return res;
}

} // namespace lego
