#include "model/layer.hh"

namespace lego
{

Int
Layer::gemmM() const
{
    switch (kind) {
      case LayerKind::Conv:
        return n * oh * ow;
      case LayerKind::DwConv:
        return n * oh * ow * ic; // Channel-parallel pixels.
      case LayerKind::Linear:
      case LayerKind::MatMul:
        return m;
      default:
        return 0;
    }
}

Int
Layer::gemmN() const
{
    switch (kind) {
      case LayerKind::Conv:
        return oc;
      case LayerKind::DwConv:
        return 1; // Per-channel dot products.
      case LayerKind::Linear:
      case LayerKind::MatMul:
        return nOut;
      default:
        return 0;
    }
}

Int
Layer::gemmK() const
{
    switch (kind) {
      case LayerKind::Conv:
        return ic * kh * kw;
      case LayerKind::DwConv:
        return kh * kw;
      case LayerKind::Linear:
      case LayerKind::MatMul:
        return k;
      default:
        return 0;
    }
}

Int
Layer::macs() const
{
    if (!isTensorOp())
        return 0;
    return gemmM() * gemmN() * gemmK();
}

Int
Layer::inputBytes() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::DwConv: {
        Int ih = oh * stride + kh - 1;
        Int iw = ow * stride + kw - 1;
        return n * ic * ih * iw;
      }
      case LayerKind::Linear:
      case LayerKind::MatMul:
        return m * k;
      default:
        return elems;
    }
}

Int
Layer::weightBytes() const
{
    switch (kind) {
      case LayerKind::Conv:
        return oc * ic * kh * kw;
      case LayerKind::DwConv:
        return ic * kh * kw;
      case LayerKind::Linear:
        return k * nOut;
      case LayerKind::MatMul:
        return k * nOut; // Second activation operand.
      default:
        return 0;
    }
}

Int
Layer::outputBytes() const
{
    switch (kind) {
      case LayerKind::Conv:
        return n * oc * oh * ow;
      case LayerKind::DwConv:
        return n * ic * oh * ow;
      case LayerKind::Linear:
      case LayerKind::MatMul:
        return m * nOut;
      default:
        return elems;
    }
}

Int
Model::totalMacs() const
{
    Int macs = 0;
    for (const Layer &l : layers)
        macs += Int(l.repeat) * l.macs();
    return macs;
}

Int
Model::totalPpuElems() const
{
    Int e = 0;
    for (const Layer &l : layers)
        if (!l.isTensorOp())
            e += Int(l.repeat) * l.elems;
    return e;
}

Layer
conv(const std::string &name, Int ic, Int oc, Int ohw, Int khw,
     Int stride, int repeat)
{
    Layer l;
    l.kind = LayerKind::Conv;
    l.name = name;
    l.repeat = repeat;
    l.ic = ic;
    l.oc = oc;
    l.oh = l.ow = ohw;
    l.kh = l.kw = khw;
    l.stride = stride;
    return l;
}

Layer
dwconv(const std::string &name, Int c, Int ohw, Int khw, Int stride,
       int repeat)
{
    Layer l;
    l.kind = LayerKind::DwConv;
    l.name = name;
    l.repeat = repeat;
    l.ic = c;
    l.oc = c;
    l.oh = l.ow = ohw;
    l.kh = l.kw = khw;
    l.stride = stride;
    return l;
}

Layer
linear(const std::string &name, Int m, Int k, Int n, int repeat,
       bool batch_amortized)
{
    Layer l;
    l.kind = LayerKind::Linear;
    l.name = name;
    l.repeat = repeat;
    l.m = m;
    l.k = k;
    l.nOut = n;
    l.batchAmortized = batch_amortized;
    return l;
}

Layer
matmul(const std::string &name, Int m, Int k, Int n, int repeat)
{
    Layer l;
    l.kind = LayerKind::MatMul;
    l.name = name;
    l.repeat = repeat;
    l.m = m;
    l.k = k;
    l.nOut = n;
    return l;
}

Layer
ppu(const std::string &name, PpuOp op, Int elems, int repeat)
{
    Layer l;
    l.kind = LayerKind::PpuOpKind;
    l.name = name;
    l.repeat = repeat;
    l.ppu = op;
    l.elems = elems;
    return l;
}

} // namespace lego
