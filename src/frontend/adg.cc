#include "frontend/adg.hh"

#include <algorithm>
#include <sstream>

namespace lego
{

int
Adg::tensorOfPort(int config, int port, bool is_output) const
{
    const Workload &w = *configs.at(size_t(config)).workload;
    if (is_output)
        return w.outputTensor();
    std::vector<int> in = w.inputTensors();
    if (port < 0 || port >= int(in.size()))
        return -1;
    return in[size_t(port)];
}

Int
Adg::totalFifoDepth() const
{
    Int total = 0;
    auto add = [&](const PortPlan &p) {
        for (const PlannedEdge &e : p.edges) {
            Int worst = 0;
            for (const auto &u : e.uses)
                worst = std::max(worst, u.depth);
            total += worst;
        }
    };
    for (const PortPlan &p : inputPorts)
        add(p);
    add(outputPort);
    return total;
}

int
Adg::totalEdges() const
{
    int n = int(outputPort.edges.size());
    for (const PortPlan &p : inputPorts)
        n += int(p.edges.size());
    return n;
}

std::string
Adg::describe() const
{
    std::ostringstream os;
    os << "ADG: " << numFus() << " FUs, array " << toString(arrayShape)
       << ", op " << opKindName(fuOp) << ", " << numConfigs()
       << " config(s)\n";
    for (int c = 0; c < numConfigs(); c++) {
        os << "  config " << c << ": " << configs[size_t(c)].workload->name
           << " / " << configs[size_t(c)].map.name << "\n";
    }
    auto dumpPort = [&](const PortPlan &p, const std::string &label,
                        const FusedBanking &fb) {
        os << "  port " << label << ": " << p.edges.size() << " edges";
        int direct = 0, delay = 0;
        for (const PlannedEdge &e : p.edges) {
            bool has_delay = false;
            for (const auto &u : e.uses)
                if (u.kind == ConnKind::Delay)
                    has_delay = true;
            (has_delay ? delay : direct)++;
        }
        os << " (" << direct << " direct, " << delay << " delay), "
           << p.allDataNodes().size() << " data nodes, "
           << fb.physicalBanks << " banks\n";
    };
    for (size_t i = 0; i < inputPorts.size(); i++)
        dumpPort(inputPorts[i], "in" + std::to_string(i),
                 inputBanking[i]);
    dumpPort(outputPort, "out", outputBanking);
    return os.str();
}

} // namespace lego
