/**
 * @file
 * Per-request stats attribution for concurrent callers of the DSE
 * engine. The engine's StatsEpoch hooks (beginEpoch/statsSince)
 * snapshot GLOBAL monotonic counters, so their deltas are exact only
 * while requests never overlap — the single-dispatcher serving
 * assumption. Once the serve loop overlaps requests, two open epochs
 * see each other's work.
 *
 * A StatsContext is the overlap-safe replacement: a per-request
 * counter block installed into thread-local storage with an RAII
 * Scope. Every counter bump site (Evaluator work counters, CostCache
 * tier counters) credits BOTH the global atomic and the current
 * thread's context, and the evaluator re-installs the submitting
 * thread's context inside each WorkerPool item it fans out, so work
 * executed by shared pool workers is attributed to the request that
 * asked for it — exactly, even with any number of requests in
 * flight.
 *
 * Null context (the default on every thread) costs one thread-local
 * load per bump; paths that never install a scope are unchanged.
 */

#ifndef LEGO_DSE_STATS_SCOPE_HH
#define LEGO_DSE_STATS_SCOPE_HH

#include <atomic>
#include <cstdint>

namespace lego
{
namespace dse
{

/**
 * One request's work/caching counters, bumped from any thread whose
 * current scope points here. Field names mirror DseStats; atomics
 * because several pool workers serve one request concurrently.
 */
class StatsContext
{
  public:
    std::atomic<std::uint64_t> cacheHits{0};   //!< Sharded L1 hits.
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> l0Hits{0};      //!< Thread-local L0.
    std::atomic<std::uint64_t> l0Misses{0};
    std::atomic<std::uint64_t> frontHits{0};   //!< Frontier memo.
    std::atomic<std::uint64_t> frontMisses{0};
    std::atomic<std::uint64_t> segHits{0};     //!< Segment memo.
    std::atomic<std::uint64_t> segMisses{0};
    std::atomic<std::uint64_t> evictions{0};   //!< L1 LRU evictions.
    /** Shared mmap-tier attribution (each also counts in the
     *  matching cacheHits/frontHits/segHits slot). */
    std::atomic<std::uint64_t> sharedHits{0};
    std::atomic<std::uint64_t> sharedFrontHits{0};
    std::atomic<std::uint64_t> sharedSegHits{0};
    std::atomic<std::uint64_t> modelEvals{0};
    std::atomic<std::uint64_t> mappingsPruned{0};
    std::atomic<std::uint64_t> dataflowsPruned{0};
    std::atomic<std::uint64_t> layersDeduped{0};
    std::atomic<std::uint64_t> crossModelDeduped{0};

    /** The context installed on THIS thread (null = none). */
    static StatsContext *current() { return tls(); }

    /**
     * RAII installation. Nestable: the previous context is restored
     * on destruction. Installing null is valid (and is how a worker
     * serving uncontexted work keeps it unattributed).
     */
    class Scope
    {
      public:
        explicit Scope(StatsContext *ctx) : prev_(tls())
        {
            tls() = ctx;
        }
        ~Scope() { tls() = prev_; }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        StatsContext *prev_;
    };

  private:
    static StatsContext *&tls()
    {
        thread_local StatsContext *ctx = nullptr;
        return ctx;
    }
};

/**
 * Bump a global monotonic counter AND the current thread's context
 * slot (when one is installed). THE idiom for every counter the
 * serving loop reports per request; sites that use it stay exact
 * under overlapped requests for free.
 */
inline void
bumpStat(std::atomic<std::uint64_t> &global,
         std::atomic<std::uint64_t> StatsContext::*slot,
         std::uint64_t n = 1)
{
    global.fetch_add(n, std::memory_order_relaxed);
    if (StatsContext *ctx = StatsContext::current())
        (ctx->*slot).fetch_add(n, std::memory_order_relaxed);
}

} // namespace dse
} // namespace lego

#endif // LEGO_DSE_STATS_SCOPE_HH
