/**
 * @file
 * Layer-class deduplication for the mapping search: two layers whose
 * mapping-relevant shape fields are identical (everything the
 * performance model and the mapping sweep read — kind, GEMM dims,
 * conv geometry, batch amortization, PPU op/size; name and repeat
 * count excluded) always receive the identical best mapping on the
 * same hardware. Grouping a model's layers into such classes lets
 * the evaluator search each class once and broadcast the result to
 * every instance: transformer and CNN models collapse from dozens of
 * layer instances to a handful of classes.
 */

#ifndef LEGO_MODEL_LAYER_CLASS_HH
#define LEGO_MODEL_LAYER_CLASS_HH

#include <array>
#include <cstdint>

#include "model/layer.hh"

namespace lego
{

/**
 * Canonical mapping-relevant signature of a layer. Exact-match
 * equality over every field the mapping sweep depends on. words()
 * is THE canonical serialization of a layer's shape: the DSE cache
 * key builds its layer section from it, so the dedup equivalence
 * ("equal signature => identical search result") and the cache key
 * can never diverge. A new Layer field read by the performance
 * model must be added here (and to the cache-file schema string) —
 * everything else follows.
 */
struct LayerSignature
{
    LayerKind kind = LayerKind::Conv;
    Int n = 0, ic = 0, oc = 0, oh = 0, ow = 0, kh = 0, kw = 0;
    Int stride = 0, m = 0, k = 0, nOut = 0;
    bool batchAmortized = false;
    PpuOp ppu = PpuOp::Relu;
    Int elems = 0;

    static constexpr std::size_t kWords = 15;

    /** The canonical field serialization, in schema order. */
    std::array<std::uint64_t, kWords> words() const;

    bool operator==(const LayerSignature &o) const
    {
        return words() == o.words();
    }

    /** 64-bit FNV-1a over words(). */
    std::uint64_t hash() const;
};

struct LayerSignatureHash
{
    std::size_t operator()(const LayerSignature &s) const
    {
        return std::size_t(s.hash());
    }
};

/** The signature of one layer (name and repeat excluded). */
LayerSignature layerSignature(const Layer &l);

/**
 * One equivalence class of shape-identical layers in a model:
 * `representative` is the first instance (its search result is valid
 * for every member), `members` lists all instance indices in layer
 * order, including the representative.
 */
struct LayerClass
{
    std::size_t representative = 0;
    std::vector<std::size_t> members;
};

/**
 * Group `m.layers` into shape-identical classes, ordered by first
 * occurrence. Every layer index appears in exactly one class.
 */
std::vector<LayerClass> groupLayerClasses(const Model &m);

/** A layer instance inside a model zoo. */
struct ZooLayerRef
{
    std::size_t model = 0; //!< Index into the zoo.
    std::size_t layer = 0; //!< Index into that model's layers.
};

/**
 * One equivalence class of shape-identical layers across a model
 * zoo: `representative` is the first instance in (model, layer)
 * order, `members` lists every instance in that order (including
 * the representative), `distinctModels` counts how many models of
 * the zoo contain the shape — (distinctModels - 1) is the number of
 * searches a per-model class table would have run that the zoo
 * table shares away.
 */
struct ZooLayerClass
{
    ZooLayerRef representative;
    std::vector<ZooLayerRef> members;
    std::size_t distinctModels = 0;
};

/**
 * Zoo-level class table: group the layers of EVERY model into one
 * set of shape-identical classes, ordered by first occurrence in
 * (model, layer) order, so multi-model sweeps share mapping
 * searches between networks. Every (model, layer) pair appears in
 * exactly one class.
 */
std::vector<ZooLayerClass>
groupLayerClassesZoo(const std::vector<const Model *> &zoo);

} // namespace lego

#endif // LEGO_MODEL_LAYER_CLASS_HH
