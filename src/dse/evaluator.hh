/**
 * @file
 * Candidate evaluation engine: scores hardware candidates through the
 * existing layer performance model (runLayer) and chip cost roll-up
 * (archCost). Owns the per-layer mapping sweep that used to live in
 * mapper::mapLayer — the mapper is now a thin client of this code —
 * with two accelerations:
 *
 *  - spatialEfficiency is computed once per (hw, layer, dataflow)
 *    and shared by every tiling candidate of that dataflow;
 *  - each (hw, layer, mapping) evaluation is memoized in an optional
 *    CostCache shared across DSE worker threads.
 */

#ifndef LEGO_DSE_EVALUATOR_HH
#define LEGO_DSE_EVALUATOR_HH

#include "dse/cost_cache.hh"
#include "dse/pareto.hh"
#include "dse/worker_pool.hh"
#include "model/models.hh"

namespace lego
{
namespace dse
{

/**
 * Candidate tiling/dataflow mappings for one tensor layer on one
 * hardware instance, in the canonical sweep order (dataflow-major,
 * then tm/tn/tk). Non-tensor layers have no mappings.
 */
std::vector<Mapping> mappingCandidates(const HardwareConfig &hw,
                                       const Layer &l);

/**
 * Does a (tm, tn, tk) GEMM tile fit the L1 buffers double-buffered?
 * Operand footprints are counted at the datapath width
 * (`hw.dataBits`); partial sums are always 24-bit accumulators.
 * This is THE fit rule: the mapping sweep and the feasibility
 * pruning below must agree on it.
 */
bool fitsL1(const HardwareConfig &hw, Int tm, Int tn, Int tk);

/**
 * Can the hardware's L1 hold at least the *smallest* candidate tile
 * of the layer? A candidate failing this for any layer of a model
 * can only ever be costed through the degenerate fallback mapping,
 * so exhaustive search may skip it (StrategyKind::PrunedExhaustive).
 */
bool feasible(const HardwareConfig &hw, const Layer &l);

/** feasible() over every layer of a model. */
bool feasible(const HardwareConfig &hw, const Model &m);

class Evaluator
{
  public:
    /** cache may be null: every evaluation is then computed fresh. */
    explicit Evaluator(CostCache *cache = nullptr) : cache_(cache) {}

    /**
     * Sweep the layer's mapping candidates and keep the best
     * (cycles, then energy, then utilization — the paper's VI-A
     * mapping search).
     */
    MappedLayer searchMapping(const HardwareConfig &hw,
                              const Layer &l) const;

    /**
     * Map every layer of the model, fanning the per-layer sweeps
     * across `pool` (inline when null), and aggregate — equivalent
     * to scheduleModel but parallel and memoized.
     */
    ScheduleResult mapModel(const HardwareConfig &hw, const Model &m,
                            WorkerPool *pool = nullptr) const;

    /** Score one hardware candidate on a model as a DSE point. */
    DsePoint evaluate(const HardwareConfig &hw, const Model &m,
                      std::size_t id = 0) const;

    CostCache *cache() const { return cache_; }

  private:
    LayerResult scoredRunLayer(const HardwareConfig &hw,
                               const Layer &l, const Mapping &map,
                               double spatialEff) const;

    CostCache *cache_;
};

} // namespace dse
} // namespace lego

#endif // LEGO_DSE_EVALUATOR_HH
