/**
 * @file
 * Network-on-chip models (paper Section II): a multi-stage butterfly
 * for L1 distribution and a wormhole 2D mesh with X-Y routing for the
 * L2 scale-up fabric. Deadlock freedom comes from dimension-ordered
 * routing, as in the paper.
 */

#ifndef LEGO_SIM_NOC_HH
#define LEGO_SIM_NOC_HH

#include "core/types.hh"

namespace lego
{

enum class NocKind { Butterfly, WormholeMesh };

/** Static NoC description. */
struct NocSpec
{
    NocKind kind = NocKind::Butterfly;
    int endpointsX = 1; //!< Mesh columns (or butterfly ports).
    int endpointsY = 1; //!< Mesh rows (1 for butterfly).
    Int linkBits = 128;
    double freqGhz = 1.0;
};

/** Modeled cost/throughput. */
struct NocCost
{
    double areaUm2 = 0;
    double powerUw = 0;          //!< At nominal 30% injection.
    double bisectionGBs = 0;
    double avgLatencyCycles = 0; //!< Uniform-random traffic.
    double energyPerBytePj = 0;
};

NocCost nocCost(const NocSpec &s);

/** X-Y routing hop count between mesh endpoints. */
int meshHops(int x0, int y0, int x1, int y1);

/**
 * Cycles to move `bytes` across the NoC from one endpoint under
 * dimension-ordered wormhole routing with `hops` hops.
 */
Int nocTransferCycles(const NocSpec &s, Int bytes, int hops);

} // namespace lego

#endif // LEGO_SIM_NOC_HH
