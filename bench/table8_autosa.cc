/**
 * @file
 * Reproduces Table VIII: FPGA resources (FF / LUT) of LEGO-generated
 * designs vs AutoSA on a Xilinx U280, 8x8 arrays, for GEMM-IJ,
 * Conv2d-OCOH and MTTKRP-IJ. Paper LEGO: 3.9K/4.8K, 4.9K/4.2K,
 * 4.9K/4.7K — an order of magnitude below AutoSA's polyhedral
 * control logic.
 */

#include <cstdio>
#include <memory>

#include "lego.hh"

using namespace lego;

namespace
{

FpgaCost
buildFpga(Workload w, const DataflowSpec &spec)
{
    auto wp = std::make_unique<Workload>(std::move(w));
    Adg adg = generateArchitecture({{wp.get(), buildDataflow(*wp, spec)}});
    CodegenResult gen = codegen(adg);
    runBackend(gen);
    return fpgaCost(gen.dag);
}

} // namespace

int
main()
{
    const Int p = 8;
    std::printf("=== Table VIII: LEGO vs AutoSA on U280 (8x8 "
                "arrays) ===\n");
    std::printf("%-14s | %18s | %18s\n", "kernel",
                "AutoSA FF / LUT", "LEGO FF / LUT (paper)");

    auto autosa = autosaFpgaPoints();

    Workload g = makeGemm(32, 32, 32);
    FpgaCost f1 =
        buildFpga(g, makeSimpleSpec(g, "ij", {{"i", p}, {"j", p}},
                                    false));
    Workload c = makeConv2d(1, 8, 8, 8, 8, 3, 3);
    FpgaCost f2 =
        buildFpga(c, makeSimpleSpec(c, "ocoh", {{"oc", p}, {"oh", p}},
                                    false));
    Workload m = makeMttkrp(16, 16, 16, 16);
    FpgaCost f3 =
        buildFpga(m, makeSimpleSpec(m, "ij", {{"i", p}, {"j", p}},
                                    false));

    FpgaCost ours[] = {f1, f2, f3};
    const char *paper[] = {"3.9K / 4.8K", "4.9K / 4.2K",
                           "4.9K / 4.7K"};
    for (int i = 0; i < 3; i++) {
        std::printf("%-14s | %7.1fK / %6.1fK | %5.1fK / %5.1fK  "
                    "(%s)\n", autosa[size_t(i)].kernel.c_str(),
                    double(autosa[size_t(i)].ff) / 1e3,
                    double(autosa[size_t(i)].lut) / 1e3,
                    double(ours[i].ff) / 1e3,
                    double(ours[i].lut) / 1e3, paper[i]);
    }
    std::printf("(LEGO's shared control + forwarded operands stay an "
                "order of magnitude below AutoSA's per-PE polyhedral "
                "control)\n");
    return 0;
}
