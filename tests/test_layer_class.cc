/**
 * @file
 * Tests for layer-class deduplication: signature equality semantics,
 * grouping invariants (partition, first-occurrence representatives),
 * and the evaluator's broadcast being bit-identical to the naive
 * per-layer mapping search on models with repeated blocks.
 */

#include <gtest/gtest.h>

#include "lego.hh"

namespace lego
{
namespace
{

/** A CNN trunk with explicitly repeated blocks (no `repeat` field):
 *  the shape-identical instances must collapse into classes. */
Model
repeatedBlockModel()
{
    Model m;
    m.name = "blocks";
    for (int i = 0; i < 4; ++i) {
        m.layers.push_back(
            conv("b" + std::to_string(i) + ".a", 64, 64, 28, 3));
        m.layers.push_back(
            conv("b" + std::to_string(i) + ".b", 64, 256, 28, 1));
        m.layers.push_back(ppu("b" + std::to_string(i) + ".relu",
                               PpuOp::Relu, 256 * 28 * 28));
    }
    m.layers.push_back(linear("head", 1, 256, 1000));
    return m;
}

TEST(LayerClass, SignatureIgnoresNameAndRepeat)
{
    Layer a = conv("stage1", 64, 64, 56, 3);
    Layer b = conv("stage9", 64, 64, 56, 3);
    b.repeat = 7;
    EXPECT_TRUE(layerSignature(a) == layerSignature(b));
    EXPECT_EQ(layerSignature(a).hash(), layerSignature(b).hash());

    // Every shape field participates.
    Layer c = conv("stage1", 64, 64, 57, 3);
    EXPECT_FALSE(layerSignature(a) == layerSignature(c));
    Layer d = conv("stage1", 64, 64, 56, 3, /*stride=*/2);
    EXPECT_FALSE(layerSignature(a) == layerSignature(d));
    Layer e = linear("fc", 16, 16, 16);
    Layer f = matmul("mm", 16, 16, 16);
    EXPECT_FALSE(layerSignature(e) == layerSignature(f)); // kind.
    Layer g = ppu("relu", PpuOp::Relu, 100);
    Layer h = ppu("gelu", PpuOp::Gelu, 100);
    EXPECT_FALSE(layerSignature(g) == layerSignature(h));
}

TEST(LayerClass, GroupsArePartitionInFirstOccurrenceOrder)
{
    Model m = repeatedBlockModel();
    std::vector<LayerClass> classes = groupLayerClasses(m);
    // 3 unique block layers + the head.
    ASSERT_EQ(classes.size(), 4u);

    std::vector<bool> seen(m.layers.size(), false);
    std::size_t lastRep = 0;
    for (std::size_t c = 0; c < classes.size(); ++c) {
        const LayerClass &cls = classes[c];
        ASSERT_FALSE(cls.members.empty());
        // Representative is the first member, classes are ordered by
        // first occurrence.
        EXPECT_EQ(cls.members.front(), cls.representative);
        if (c > 0) {
            EXPECT_GT(cls.representative, lastRep);
        }
        lastRep = cls.representative;
        for (std::size_t idx : cls.members) {
            ASSERT_LT(idx, m.layers.size());
            EXPECT_FALSE(seen[idx]) << "index " << idx << " twice";
            seen[idx] = true;
            // Members really are shape-identical to the rep.
            EXPECT_TRUE(
                layerSignature(m.layers[idx]) ==
                layerSignature(m.layers[cls.representative]));
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_TRUE(seen[i]) << "index " << i << " unassigned";
}

/** Broadcast must be bit-identical to the naive per-layer search. */
TEST(LayerClass, BroadcastMatchesNaivePerLayerPath)
{
    Model m = repeatedBlockModel();
    HardwareConfig hw;
    hw.dataflows = {DataflowTag::MN, DataflowTag::ICOC};

    dse::EvalPolicy naive;
    naive.dedupLayerClasses = false;
    naive.pruneMappings = false;
    dse::Evaluator plain(nullptr, naive);
    dse::Evaluator fast(nullptr); // Dedup + pruning on.

    ScheduleResult a = plain.mapModel(hw, m);
    ScheduleResult b = fast.mapModel(hw, m);
    EXPECT_EQ(fast.counters().layersDeduped,
              m.layers.size() - 4u);

    EXPECT_EQ(a.summary.totalCycles, b.summary.totalCycles);
    EXPECT_EQ(a.summary.totalEnergyPj, b.summary.totalEnergyPj);
    EXPECT_EQ(a.summary.dramBytes, b.summary.dramBytes);
    ASSERT_EQ(a.perLayer.size(), b.perLayer.size());
    for (std::size_t i = 0; i < a.perLayer.size(); ++i) {
        const MappedLayer &x = a.perLayer[i], &y = b.perLayer[i];
        EXPECT_EQ(x.mapping.dataflow, y.mapping.dataflow) << i;
        EXPECT_EQ(x.mapping.tm, y.mapping.tm) << i;
        EXPECT_EQ(x.mapping.tn, y.mapping.tn) << i;
        EXPECT_EQ(x.mapping.tk, y.mapping.tk) << i;
        EXPECT_EQ(x.result.cycles, y.result.cycles) << i;
        EXPECT_EQ(x.result.energyPj, y.result.energyPj) << i;
        EXPECT_EQ(x.result.utilization, y.result.utilization) << i;
        EXPECT_EQ(x.result.dramBytes, y.result.dramBytes) << i;
    }
}

/** Same identity through the engine, fanned across 8 workers. */
TEST(LayerClass, BroadcastIdenticalAcrossWorkerCounts)
{
    Model m = repeatedBlockModel();
    HardwareConfig hw;

    dse::DseOptions naive;
    naive.threads = 8;
    naive.eval.dedupLayerClasses = false;
    naive.eval.pruneMappings = false;
    ScheduleResult a = dse::DseEngine(naive).mapModel(hw, m);

    dse::DseOptions fast;
    fast.threads = 8;
    ScheduleResult b = dse::DseEngine(fast).mapModel(hw, m);

    EXPECT_EQ(a.summary.totalCycles, b.summary.totalCycles);
    EXPECT_EQ(a.summary.totalEnergyPj, b.summary.totalEnergyPj);
    ASSERT_EQ(a.perLayer.size(), b.perLayer.size());
    for (std::size_t i = 0; i < a.perLayer.size(); ++i) {
        EXPECT_EQ(a.perLayer[i].result.cycles,
                  b.perLayer[i].result.cycles);
        EXPECT_EQ(a.perLayer[i].mapping.tm, b.perLayer[i].mapping.tm);
    }
}

/** Two networks sharing shapes with each other and themselves. */
std::pair<Model, Model>
zooPair()
{
    Model a;
    a.name = "netA";
    a.layers = {conv("a0", 64, 64, 28, 3), conv("a1", 64, 64, 28, 3),
                linear("head", 1, 256, 1000)};
    Model b;
    b.name = "netB";
    b.layers = {conv("b0", 64, 64, 28, 3), // Shared with netA.
                dwconv("b1", 96, 56, 3),   // Unique to netB.
                linear("tail", 1, 256, 1000)}; // Shared with netA.
    return {a, b};
}

TEST(LayerClassZoo, GroupsPartitionAcrossModels)
{
    auto [a, b] = zooPair();
    std::vector<const Model *> zoo = {&a, &b};
    std::vector<ZooLayerClass> classes = groupLayerClassesZoo(zoo);
    // conv64, linear-head, dwconv: 3 classes across 6 instances.
    ASSERT_EQ(classes.size(), 3u);

    std::vector<std::vector<bool>> seen = {
        std::vector<bool>(a.layers.size(), false),
        std::vector<bool>(b.layers.size(), false)};
    for (const ZooLayerClass &cls : classes) {
        ASSERT_FALSE(cls.members.empty());
        EXPECT_EQ(cls.members.front().model, cls.representative.model);
        EXPECT_EQ(cls.members.front().layer, cls.representative.layer);
        const Layer &rep =
            zoo[cls.representative.model]
                ->layers[cls.representative.layer];
        for (const ZooLayerRef &ref : cls.members) {
            EXPECT_FALSE(seen[ref.model][ref.layer]);
            seen[ref.model][ref.layer] = true;
            EXPECT_TRUE(layerSignature(zoo[ref.model]->layers[ref.layer]) ==
                        layerSignature(rep));
        }
    }
    for (const auto &model : seen)
        for (bool s : model)
            EXPECT_TRUE(s);

    // conv64 spans both models (3 instances), the linear head spans
    // both (2), the dwconv only netB.
    EXPECT_EQ(classes[0].members.size(), 3u);
    EXPECT_EQ(classes[0].distinctModels, 2u);
    EXPECT_EQ(classes[1].members.size(), 2u);
    EXPECT_EQ(classes[1].distinctModels, 2u);
    EXPECT_EQ(classes[2].members.size(), 1u);
    EXPECT_EQ(classes[2].distinctModels, 1u);
}

/** Zoo mapping == independent per-model mapping, bit for bit, while
 *  sharing the cross-model searches (counted exactly). */
TEST(LayerClassZoo, ZooMappingMatchesPerModel)
{
    auto [a, b] = zooPair();
    std::vector<const Model *> zoo = {&a, &b};
    HardwareConfig hw;
    hw.dataflows = {DataflowTag::MN, DataflowTag::ICOC};

    dse::Evaluator ev;
    std::vector<ScheduleResult> shared = ev.mapZoo(hw, zoo);
    // 6 instances, 3 zoo classes -> 3 broadcast layers; 2 of the 3
    // classes span both models -> 2 cross-model shares.
    EXPECT_EQ(ev.counters().searches, 3u);
    EXPECT_EQ(ev.counters().layersDeduped, 3u);
    EXPECT_EQ(ev.counters().crossModelDeduped, 2u);

    ASSERT_EQ(shared.size(), 2u);
    for (std::size_t mi = 0; mi < zoo.size(); ++mi) {
        ScheduleResult solo = dse::Evaluator().mapModel(hw, *zoo[mi]);
        EXPECT_EQ(solo.summary.totalCycles,
                  shared[mi].summary.totalCycles);
        EXPECT_EQ(solo.summary.totalEnergyPj,
                  shared[mi].summary.totalEnergyPj);
        ASSERT_EQ(solo.perLayer.size(), shared[mi].perLayer.size());
        for (std::size_t i = 0; i < solo.perLayer.size(); ++i) {
            EXPECT_EQ(solo.perLayer[i].mapping.dataflow,
                      shared[mi].perLayer[i].mapping.dataflow);
            EXPECT_EQ(solo.perLayer[i].mapping.tm,
                      shared[mi].perLayer[i].mapping.tm);
            EXPECT_EQ(solo.perLayer[i].result.cycles,
                      shared[mi].perLayer[i].result.cycles);
            EXPECT_EQ(solo.perLayer[i].result.energyPj,
                      shared[mi].perLayer[i].result.energyPj);
        }
    }

    // Through the engine (8 workers) the shares and results hold.
    dse::DseOptions opt;
    opt.threads = 8;
    dse::DseEngine engine(opt);
    std::vector<ScheduleResult> pooled = engine.mapZoo(hw, zoo);
    EXPECT_EQ(engine.evaluator().counters().crossModelDeduped, 2u);
    for (std::size_t mi = 0; mi < zoo.size(); ++mi) {
        EXPECT_EQ(pooled[mi].summary.totalCycles,
                  shared[mi].summary.totalCycles);
        EXPECT_EQ(pooled[mi].summary.totalEnergyPj,
                  shared[mi].summary.totalEnergyPj);
    }
}

} // namespace
} // namespace lego
