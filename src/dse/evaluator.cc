#include "dse/evaluator.hh"

#include <algorithm>
#include <limits>

#include "dse/stats_scope.hh"
#include "obs/trace.hh"

namespace lego
{
namespace dse
{

namespace
{

/** Candidate tile sizes: geometric ladder up to the dim. */
std::vector<Int>
tileCandidates(Int dim)
{
    std::vector<Int> out;
    for (Int t = 16; t < dim; t *= 4)
        out.push_back(t);
    out.push_back(dim);
    return out;
}

/**
 * Append the fitsL1-filtered tilings of one dataflow in canonical
 * (tm, tn, tk) order. The tile ladders are hoisted to the caller so
 * the triple loop never reallocates them.
 */
void
appendTilings(const HardwareConfig &hw, DataflowTag df, Int m, Int n,
              Int k, const std::vector<Int> &tms,
              const std::vector<Int> &tns, const std::vector<Int> &tks,
              std::vector<Mapping> *out)
{
    for (Int tm : tms)
        for (Int tn : tns)
            for (Int tk : tks) {
                if (!fitsL1(hw, std::min(tm, m), std::min(tn, n),
                            std::min(tk, k)))
                    continue;
                out->push_back(Mapping{df, tm, tn, tk});
            }
}

} // namespace

bool
betterResult(const LayerResult &r, const LayerResult &best)
{
    return r.cycles < best.cycles ||
           (r.cycles == best.cycles && r.energyPj < best.energyPj) ||
           (r.cycles == best.cycles && r.energyPj == best.energyPj &&
            r.utilization > best.utilization);
}

bool
fitsL1(const HardwareConfig &hw, Int tm, Int tn, Int tk)
{
    // Operands at the datapath width, accumulators always 24-bit.
    Int operand = (tm * tk + tk * tn) * Int(hw.dataBits) / 8;
    Int partial = tm * tn * 3;
    return 2 * (operand + partial) <= hw.l1Kb * 1024;
}

bool
feasible(const HardwareConfig &hw, const Layer &l)
{
    if (!l.isTensorOp())
        return true;
    // The smallest entry of tileCandidates(dim) is min(16, dim).
    return fitsL1(hw, std::min<Int>(16, l.gemmM()),
                  std::min<Int>(16, l.gemmN()),
                  std::min<Int>(16, l.gemmK()));
}

bool
feasible(const HardwareConfig &hw, const Model &m)
{
    for (const Layer &l : m.layers)
        if (!feasible(hw, l))
            return false;
    return true;
}

std::vector<Mapping>
mappingCandidates(const HardwareConfig &hw, const Layer &l)
{
    std::vector<Mapping> out;
    if (!l.isTensorOp())
        return out;
    const Int m = l.gemmM(), n = l.gemmN(), k = l.gemmK();
    const std::vector<Int> tms = tileCandidates(m);
    const std::vector<Int> tns = tileCandidates(n);
    const std::vector<Int> tks = tileCandidates(k);
    out.reserve(hw.dataflows.size() * tms.size() * tns.size() *
                tks.size());
    for (DataflowTag df : hw.dataflows)
        appendTilings(hw, df, m, n, k, tms, tns, tks, &out);
    return out;
}

LayerResult
Evaluator::scoredRunLayer(const HardwareConfig &hw, const Layer &l,
                          const Mapping &map, double spatialEff) const
{
    if (!cache_) {
        bumpStat(modelEvals_, &StatsContext::modelEvals);
        return runLayerWithEff(hw, l, map, spatialEff);
    }
    CacheKey key = makeCacheKey(hw, l, map);
    LayerResult res;
    if (cache_->lookupFast(key, &res))
        return res;
    bumpStat(modelEvals_, &StatsContext::modelEvals);
    res = runLayerWithEff(hw, l, map, spatialEff);
    cache_->insertFast(key, res);
    return res;
}

MappingFrontier
Evaluator::sweepFrontier(const HardwareConfig &hw, const Layer &l,
                         std::size_t cap,
                         const CancelToken *cancel) const
{
    LEGO_TRACE_SPAN_ARG("dse.sweepFrontier", "dse", "k", cap);
    MappingFrontier front(cap);
    const Int m = l.gemmM(), n = l.gemmN(), k = l.gemmK();
    const std::vector<Int> tms = tileCandidates(m);
    const std::vector<Int> tns = tileCandidates(n);
    const std::vector<Int> tks = tileCandidates(k);

    // All candidates in canonical order, with the per-dataflow spans
    // (the spatial efficiency is computed once per dataflow and
    // shared by all of its tilings).
    struct DataflowSpan
    {
        std::size_t begin = 0, end = 0;
        double se = 0;
    };
    std::vector<Mapping> cands;
    std::vector<DataflowSpan> spans;
    for (DataflowTag df : hw.dataflows) {
        DataflowSpan span;
        span.begin = cands.size();
        span.se = spatialEfficiency(hw, l, df);
        appendTilings(hw, df, m, n, k, tms, tns, tks, &cands);
        span.end = cands.size();
        if (span.end > span.begin)
            spans.push_back(span);
    }
    auto seOf = [&](std::size_t i) {
        for (const DataflowSpan &s : spans)
            if (i < s.end)
                return s.se;
        return 0.0; // Unreachable: every candidate is in a span.
    };

    if (!policy_.pruneMappings) {
        // Naive reference: evaluate every candidate in canonical
        // order into an UNBOUNDED frontier, then keep the sorted
        // prefix. Unbounded insertion is insertion-order independent
        // (no capacity trim can discard a point that later
        // dominations would re-admit), so the kept prefix is the
        // true top-K of the full non-dominated set.
        MappingFrontier full(0);
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (cancel && cancel->shouldStop()) {
                // Best-so-far truncation: the frontier built from
                // the candidates already evaluated is returned as-is.
                cancel->noteDegraded();
                break;
            }
            FrontierPoint p;
            p.mapping = cands[i];
            p.result = scoredRunLayer(hw, l, cands[i], seOf(i));
            p.seq = i;
            full.insert(p);
        }
        for (std::size_t i = 0;
             i < full.size() && i < cap; ++i)
            front.insert(full.points()[i]);
    } else if (!cands.empty()) {
        // Branch-and-bound: admit candidates of ALL dataflows in one
        // globally ascending order of the exact cycle bound (the
        // bound IS the true cycle count — sim/perf.hh mappingCycles
        // shares the cycle model with runLayerWithEff; bounds are
        // batch-evaluated per dataflow span). Under ascending-cycles
        // insertion a new point can never dominate a strictly-faster
        // kept point, so capacity trimming is exact, and once the
        // frontier is full every remaining candidate with a bound
        // past the worst kept point can only be trimmed — one global
        // cut ends the sweep with the kept set equal to the naive
        // path's top-K prefix. stable_sort keeps equal-cycle
        // candidates in canonical order, preserving tie-breaks. At
        // K = 1 this is the classical incumbent cut.
        std::vector<Int> bounds(cands.size());
        for (const DataflowSpan &s : spans)
            mappingCyclesBatch(hw, l, cands.data() + s.begin,
                               s.end - s.begin, s.se,
                               bounds.data() + s.begin);
        std::vector<std::size_t> order(cands.size());
        for (std::size_t i = 0; i < cands.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return bounds[a] < bounds[b];
                         });
        std::vector<std::size_t> evalsPerSpan(spans.size(), 0);
        auto spanOf = [&](std::size_t i) {
            for (std::size_t s = 0; s < spans.size(); ++s)
                if (i < spans[s].end)
                    return s;
            return spans.size() - 1;
        };
        for (std::size_t oi = 0; oi < order.size(); ++oi) {
            const std::size_t i = order[oi];
            if (front.atCapacity() &&
                bounds[i] > front.worst().result.cycles) {
                bumpStat(mappingsPruned_,
                         &StatsContext::mappingsPruned,
                         order.size() - oi);
                break;
            }
            // Deadline check AFTER the bound cut: a sweep the cut
            // would have ended anyway is complete, not degraded.
            if (cancel && cancel->shouldStop()) {
                cancel->noteDegraded();
                break;
            }
            const std::size_t s = spanOf(i);
            ++evalsPerSpan[s];
            FrontierPoint p;
            p.mapping = cands[i];
            p.result = scoredRunLayer(hw, l, cands[i], spans[s].se);
            p.seq = i;
            front.insert(p);
        }
        // Dataflows cut wholesale: not one of their tilings was
        // worth evaluating against the frontier.
        for (std::size_t s = 0; s < spans.size(); ++s)
            if (evalsPerSpan[s] == 0)
                bumpStat(dataflowsPruned_,
                         &StatsContext::dataflowsPruned);
    }

    if (front.empty()) {
        // Nothing fit: smallest tiles as a fallback, clamped to the
        // problem so a tiny GEMM never reports a tile larger than
        // its own dimension.
        FrontierPoint p;
        p.mapping = Mapping{hw.dataflows.front(), std::min<Int>(16, m),
                            std::min<Int>(16, n), std::min<Int>(16, k)};
        p.result = scoredRunLayer(
            hw, l, p.mapping,
            spatialEfficiency(hw, l, p.mapping.dataflow));
        p.seq = 0;
        front.insert(p);
    }
    return front;
}

MappingFrontier
Evaluator::searchMappingFrontier(const HardwareConfig &hw,
                                 const Layer &l, std::size_t k,
                                 const CancelToken *cancel) const
{
    LEGO_TRACE_SPAN_ARG("dse.search", "dse", "k", k);
    const std::size_t cap = k == 0 ? 1 : k;
    if (!l.isTensorOp()) {
        searches_.fetch_add(1, std::memory_order_relaxed);
        MappingFrontier front(cap);
        FrontierPoint p;
        p.result = runPpuLayer(hw, l);
        front.insert(p);
        return front;
    }

    // Frontier memo, K > 1 only: K = 1 sweeps are fully covered by
    // the per-mapping memo, and the scalar hot path must keep its
    // exact cache-counter behavior. Memo hits skip the sweep and do
    // not count as searches.
    const bool memo = cache_ && policy_.memoFrontiers && cap > 1;
    CacheKey fkey;
    if (memo) {
        fkey = makeFrontierKey(hw, l, cap);
        std::vector<FrontierPoint> pts;
        if (cache_->lookupFrontierFast(fkey, &pts)) {
            MappingFrontier front(cap);
            for (const FrontierPoint &p : pts)
                front.insert(p);
            return front;
        }
    }
    searches_.fetch_add(1, std::memory_order_relaxed);
    MappingFrontier front = sweepFrontier(hw, l, cap, cancel);
    // Never memoize under a tripped token: the sweep may have been
    // truncated, and a cached partial frontier would degrade LATER
    // deadline-free requests (shouldStop is monotonic, so any sweep
    // that truncated still reads as tripped here).
    if (memo && !(cancel && cancel->shouldStop()))
        cache_->insertFrontierFast(fkey, front.points());
    return front;
}

MappedLayer
Evaluator::searchMapping(const HardwareConfig &hw, const Layer &l,
                         const CancelToken *cancel) const
{
    MappingFrontier front = searchMappingFrontier(hw, l, 1, cancel);
    MappedLayer best;
    best.mapping = front.best().mapping;
    best.result = front.best().result;
    return best;
}

std::vector<MappingFrontier>
Evaluator::mapModelFrontier(const HardwareConfig &hw, const Model &m,
                            std::size_t k, WorkerPool *pool,
                            const CancelToken *cancel) const
{
    LEGO_TRACE_SPAN_ARG("dse.mapModelFrontier", "dse", "layers",
                        m.layers.size());
    const std::size_t cap = k == 0 ? 1 : k;
    // Re-install the submitting thread's stats context inside each
    // pool item: shared workers interleave items of overlapping
    // requests, and each item's counters must credit the request
    // that asked for it (stats_scope.hh).
    StatsContext *const statsCtx = StatsContext::current();
    std::vector<MappingFrontier> fronts(m.layers.size(),
                                        MappingFrontier(cap));
    if (policy_.dedupLayerClasses) {
        // Search one representative per shape-identical class and
        // broadcast: class members produce bit-identical frontiers
        // by construction (the signature covers every field the
        // sweep reads).
        const std::vector<LayerClass> classes = groupLayerClasses(m);
        std::vector<MappingFrontier> byClass(classes.size(),
                                             MappingFrontier(cap));
        auto mapOne = [&](std::size_t c) {
            StatsContext::Scope scope(statsCtx);
            byClass[c] = searchMappingFrontier(
                hw, m.layers[classes[c].representative], cap,
                cancel);
        };
        if (pool) {
            pool->parallelFor(classes.size(), mapOne);
        } else {
            for (std::size_t c = 0; c < classes.size(); ++c)
                mapOne(c);
        }
        for (std::size_t c = 0; c < classes.size(); ++c)
            for (std::size_t idx : classes[c].members)
                fronts[idx] = byClass[c];
        bumpStat(layersDeduped_, &StatsContext::layersDeduped,
                 m.layers.size() - classes.size());
    } else {
        auto mapOne = [&](std::size_t i) {
            StatsContext::Scope scope(statsCtx);
            fronts[i] = searchMappingFrontier(hw, m.layers[i], cap,
                                              cancel);
        };
        if (pool) {
            pool->parallelFor(m.layers.size(), mapOne);
        } else {
            for (std::size_t i = 0; i < m.layers.size(); ++i)
                mapOne(i);
        }
    }
    return fronts;
}

ScheduleResult
Evaluator::mapModel(const HardwareConfig &hw, const Model &m,
                    WorkerPool *pool) const
{
    // K = 1, no budget: the composer selects each layer's single
    // frontier point — the classical best-latency schedule.
    return composeSchedule(m, mapModelFrontier(hw, m, 1, pool),
                           ComposeOptions{});
}

std::vector<std::vector<MappingFrontier>>
Evaluator::mapZooFrontier(const HardwareConfig &hw,
                          const std::vector<const Model *> &zoo,
                          std::size_t k, WorkerPool *pool,
                          const CancelToken *cancel) const
{
    LEGO_TRACE_SPAN_ARG("dse.mapZooFrontier", "dse", "models",
                        zoo.size());
    const std::size_t cap = k == 0 ? 1 : k;
    std::vector<std::vector<MappingFrontier>> fronts(zoo.size());
    if (!policy_.dedupLayerClasses) {
        for (std::size_t mi = 0; mi < zoo.size(); ++mi)
            fronts[mi] =
                mapModelFrontier(hw, *zoo[mi], cap, pool, cancel);
        return fronts;
    }
    for (std::size_t mi = 0; mi < zoo.size(); ++mi)
        fronts[mi].assign(zoo[mi]->layers.size(),
                          MappingFrontier(cap));

    // One class table across the whole zoo: shape-identical layers
    // of *different* models broadcast from the same search. As in
    // mapModelFrontier, each pool item re-installs the submitting
    // thread's stats context for exact per-request attribution.
    StatsContext *const statsCtx = StatsContext::current();
    const std::vector<ZooLayerClass> classes =
        groupLayerClassesZoo(zoo);
    std::vector<MappingFrontier> byClass(classes.size(),
                                         MappingFrontier(cap));
    auto mapOne = [&](std::size_t c) {
        StatsContext::Scope scope(statsCtx);
        const ZooLayerRef &rep = classes[c].representative;
        byClass[c] = searchMappingFrontier(
            hw, zoo[rep.model]->layers[rep.layer], cap, cancel);
    };
    if (pool) {
        pool->parallelFor(classes.size(), mapOne);
    } else {
        for (std::size_t c = 0; c < classes.size(); ++c)
            mapOne(c);
    }
    std::size_t totalLayers = 0, crossModel = 0;
    for (std::size_t mi = 0; mi < zoo.size(); ++mi)
        totalLayers += zoo[mi]->layers.size();
    for (std::size_t c = 0; c < classes.size(); ++c) {
        for (const ZooLayerRef &ref : classes[c].members)
            fronts[ref.model][ref.layer] = byClass[c];
        crossModel += classes[c].distinctModels - 1;
    }
    bumpStat(layersDeduped_, &StatsContext::layersDeduped,
             totalLayers - classes.size());
    bumpStat(crossModelDeduped_, &StatsContext::crossModelDeduped,
             crossModel);
    return fronts;
}

std::vector<ScheduleResult>
Evaluator::mapZoo(const HardwareConfig &hw,
                  const std::vector<const Model *> &zoo,
                  WorkerPool *pool) const
{
    return composeZoo(zoo, mapZooFrontier(hw, zoo, 1, pool),
                      ComposeOptions{});
}

DsePoint
Evaluator::evaluate(const HardwareConfig &hw, const Model &m,
                    std::size_t id) const
{
    DsePoint p;
    p.id = id;
    p.hw = hw;
    // Per-candidate work stays on the calling worker thread; the
    // memo cache already de-duplicates across candidates and layers.
    ScheduleResult sched = mapModel(hw, m, nullptr);
    ChipCost cost = archCost(hw);
    p.latencyCycles = double(sched.summary.totalCycles);
    p.energyPj = sched.summary.totalEnergyPj;
    p.areaMm2 = cost.totalAreaMm2();
    p.powerMw = cost.totalPowerMw();
    p.summary = sched.summary;
    return p;
}

EvalCounters
Evaluator::counters() const
{
    EvalCounters c;
    c.searches = searches_.load(std::memory_order_relaxed);
    c.layersDeduped = layersDeduped_.load(std::memory_order_relaxed);
    c.crossModelDeduped =
        crossModelDeduped_.load(std::memory_order_relaxed);
    c.mappingsPruned = mappingsPruned_.load(std::memory_order_relaxed);
    c.dataflowsPruned =
        dataflowsPruned_.load(std::memory_order_relaxed);
    c.modelEvals = modelEvals_.load(std::memory_order_relaxed);
    return c;
}

} // namespace dse
} // namespace lego
