/**
 * @file
 * Cross-cutting property suites (TEST_P sweeps) over randomized
 * workload shapes and dataflow choices:
 *
 *  - banking is conflict-free at every timestamp for the data nodes
 *    the spanning selection produces (Eq. 8);
 *  - every FU always has exactly one valid producer per operand;
 *  - causality: every planned connection has non-negative delay;
 *  - the fully-optimized generated design stays bit-exact for conv
 *    and MTTKRP shape sweeps.
 */

#include <gtest/gtest.h>

#include "lego.hh"

namespace lego
{
namespace
{

struct Shape
{
    Int a, b, c;
    int pr, pc;
    bool systolic;
};

Shape
shapeFor(int seed)
{
    Shape s;
    s.a = 4 + (seed % 3) * 4;       // 4, 8, 12.
    s.b = 8;
    s.c = 4 + (seed / 3 % 2) * 4;   // 4, 8.
    s.pr = 2 + (seed % 2) * 2;      // 2, 4.
    s.pc = 2;
    s.systolic = (seed / 2) % 2;
    return s;
}

class GemmProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(GemmProperty, BankingConflictFree)
{
    Shape s = shapeFor(GetParam());
    Workload w = makeGemm(s.a * s.pr, s.b * s.pc, s.c);
    DataflowSpec spec = makeSimpleSpec(
        w, "p", {{"i", s.pr}, {"j", s.pc}}, s.systolic);
    DataflowMapping map = buildDataflow(w, spec);
    for (int t = 0; t < int(w.tensors.size()); t++) {
        SpanningResult sr = buildSpanning(w, t, map);
        TensorBanking tb = analyzeBanking(w, t, map, sr.dataNodes);
        EXPECT_TRUE(
            bankingConflictFree(w, t, map, sr.dataNodes, tb))
            << "tensor " << w.tensors[size_t(t)].name << " seed "
            << GetParam();
    }
}

TEST_P(GemmProperty, EveryFuHasOneProducer)
{
    Shape s = shapeFor(GetParam());
    Workload w = makeGemm(s.a * s.pr, s.b * s.pc, s.c);
    DataflowSpec spec = makeSimpleSpec(
        w, "p", {{"j", s.pr}, {"k", s.pc}}, s.systolic);
    DataflowMapping map = buildDataflow(w, spec);
    for (int t = 0; t < int(w.tensors.size()); t++) {
        SpanningResult sr = buildSpanning(w, t, map);
        int covered = 0;
        for (const FuLink &l : sr.links)
            covered += (l.kind == FuLink::Kind::Memory ||
                        l.peer >= 0);
        EXPECT_EQ(covered, int(map.numFUs()));
        // Causality: all planned hops have non-negative delay.
        for (const FuLink &l : sr.links)
            EXPECT_GE(l.depth, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmProperty,
                         ::testing::Range(0, 12));

class ConvProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ConvProperty, OptimizedConvBitExact)
{
    int seed = GetParam();
    Int kh = 2 + (seed % 2);         // 2 or 3.
    Int ohw = 4;
    Int ch = 2 + (seed / 2 % 2) * 2; // 2 or 4.
    Workload w = makeConv2d(1, ch, ch, ohw, ohw, kh, kh);
    std::vector<LoopSpec> spatial;
    if (seed % 3 == 0)
        spatial = {{"ic", ch}, {"oc", ch}};
    else if (seed % 3 == 1)
        spatial = {{"oh", 2}, {"ow", 2}};
    else
        spatial = {{"ow", 2}, {"oc", ch}};
    DataflowSpec spec = makeSimpleSpec(
        w, "sweep" + std::to_string(seed), spatial, false);
    Adg adg = generateArchitecture({{&w, buildDataflow(w, spec)}});
    CodegenResult gen = codegen(adg);
    runBackend(gen);
    EXPECT_TRUE(verifyAgainstReference(gen, adg, 0,
                                       unsigned(500 + seed)))
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvProperty,
                         ::testing::Range(0, 9));

class MttkrpProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MttkrpProperty, OptimizedMttkrpBitExact)
{
    int seed = GetParam();
    Int d = 4 + (seed % 2) * 4;
    Workload w = makeMttkrp(d, d, 4, 4);
    std::vector<LoopSpec> spatial =
        seed % 2 ? std::vector<LoopSpec>{{"k", 2}, {"l", 2}}
                 : std::vector<LoopSpec>{{"i", 2}, {"j", 2}};
    DataflowSpec spec = makeSimpleSpec(
        w, "mt" + std::to_string(seed), spatial, false);
    Adg adg = generateArchitecture({{&w, buildDataflow(w, spec)}});
    CodegenResult gen = codegen(adg);
    runBackend(gen);
    EXPECT_TRUE(verifyAgainstReference(gen, adg, 0,
                                       unsigned(900 + seed)))
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MttkrpProperty,
                         ::testing::Range(0, 6));

TEST(Property, DelayMatchingIdempotent)
{
    Workload w = makeGemm(8, 8, 8);
    DataflowSpec spec =
        makeSimpleSpec(w, "kj", {{"k", 4}, {"j", 2}}, true);
    Adg adg = generateArchitecture({{&w, buildDataflow(w, spec)}});
    CodegenResult gen = codegen(adg);
    DelayMatchStats s1 = runDelayMatching(gen.dag);
    DelayMatchStats s2 = runDelayMatching(gen.dag);
    EXPECT_EQ(s1.insertedRegBits, s2.insertedRegBits);
    EXPECT_TRUE(delaysMatched(gen.dag));
}

TEST(Property, VerilogStableAcrossRuns)
{
    Workload w = makeGemm(8, 8, 8);
    DataflowSpec spec =
        makeSimpleSpec(w, "ij", {{"i", 2}, {"j", 2}}, false);
    auto build = [&]() {
        Adg adg =
            generateArchitecture({{&w, buildDataflow(w, spec)}});
        CodegenResult gen = codegen(adg);
        runBackend(gen);
        return emitVerilog(gen, "stable");
    };
    // Determinism: identical inputs emit identical netlists.
    EXPECT_EQ(build(), build());
}

} // namespace
} // namespace lego
