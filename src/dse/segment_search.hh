/**
 * @file
 * Segmentation search: decide which contiguous chains of a model's
 * layers to spatially pipeline, and how to slice the PE array among
 * the stages. Reuses the DSE's annealing machinery (SplitMix64
 * stream + temperature-accept loop, as in strategy.cc) over a
 * segment-tree state per chainable run: split / merge moves change
 * the segmentation, resize moves shift column quanta between
 * adjacent stages. Candidate segments are costed through
 * sim/segment_cost.hh with per-stage mappings searched under the
 * slice sub-configs (memoized in the CostCache at both the layer
 * and the segment level).
 *
 * Determinism: the whole search runs on the calling thread and all
 * randomness lives in one SplitMix64 stream seeded from
 * SegmentOptions::seed — results are bit-identical for any worker
 * count, warm or cold cache.
 *
 * Acceptance: a pipelined segment enters the final plan only when
 * its pipelined cost STRICTLY dominates the serial execution of its
 * member layers on both (cycles, energy). Everything else decomposes
 * back to singleton segments, so enabling segmentation can never
 * produce a worse schedule than the classical path.
 */

#ifndef LEGO_DSE_SEGMENT_SEARCH_HH
#define LEGO_DSE_SEGMENT_SEARCH_HH

#include "dse/evaluator.hh"
#include "mapper/segment.hh"

namespace lego
{
namespace dse
{

/** Work counters of one searchSegments call. */
struct SegmentSearchStats
{
    std::uint64_t chainRuns = 0;      //!< Chainable runs considered.
    std::uint64_t movesTried = 0;     //!< Annealer moves proposed.
    std::uint64_t plansEvaluated = 0; //!< Pipelined segments costed.
    std::uint64_t infeasible = 0;     //!< Costed segments over capacity.
    std::uint64_t accepted = 0;       //!< Pipelined segments in the plan.
    std::uint64_t cacheHits = 0;      //!< Segment-record cache hits.
    std::uint64_t cacheMisses = 0;    //!< Segment-record cache misses.
};

/**
 * Search a segmentation plan for `m` on `hw`. The evaluator supplies
 * the per-stage mapping searches (and its CostCache, when present,
 * memoizes both the per-stage layer results and whole segment
 * records). Returns the all-singleton plan when `opt.enable` is
 * false or nothing dominates.
 *
 * A non-null `cancel` bounds the search: annealing rounds stop at
 * the first tripped check and the best state found so far is
 * emitted (still strict-domination filtered, so a truncated search
 * can only fall back toward the serial plan, never below it).
 * Segment records computed under a tripped token are not memoized.
 */
SegmentPlan searchSegments(const HardwareConfig &hw, const Model &m,
                           const Evaluator &ev,
                           const SegmentOptions &opt,
                           SegmentSearchStats *stats = nullptr,
                           const CancelToken *cancel = nullptr);

} // namespace dse
} // namespace lego

#endif // LEGO_DSE_SEGMENT_SEARCH_HH
