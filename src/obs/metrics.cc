#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace lego
{
namespace obs
{

void
atomicAdd(std::atomic<double> *target, double v)
{
    double cur = target->load(std::memory_order_relaxed);
    while (!target->compare_exchange_weak(cur, cur + v,
                                          std::memory_order_relaxed))
        ;
}

void
atomicMin(std::atomic<double> *target, double v)
{
    double cur = target->load(std::memory_order_relaxed);
    while (v < cur &&
           !target->compare_exchange_weak(cur, v,
                                          std::memory_order_relaxed))
        ;
}

void
atomicMax(std::atomic<double> *target, double v)
{
    double cur = target->load(std::memory_order_relaxed);
    while (v > cur &&
           !target->compare_exchange_weak(cur, v,
                                          std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        bounds_ = defaultLatencyBucketsUs();
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::record(double v)
{
    // (lo, hi] buckets: the first edge >= v is v's bucket; values
    // past the last edge land in the overflow slot.
    const std::size_t b =
        std::size_t(std::lower_bound(bounds_.begin(), bounds_.end(),
                                     v) -
                    bounds_.begin());
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(&sum_, v);
    bool first = false;
    if (!any_.load(std::memory_order_relaxed) &&
        !any_.exchange(true, std::memory_order_relaxed)) {
        first = true;
        // First recorder seeds min/max; racers fix them up below.
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
    }
    if (!first) {
        atomicMin(&min_, v);
        atomicMax(&max_, v);
    }
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    s.bounds = bounds_;
    s.counts.resize(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
}

double
Histogram::Snapshot::percentile(double q) const
{
    if (count == 0)
        return 0;
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, std::uint64_t(std::ceil(q * double(count))));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= rank)
            return i < bounds.size() ? bounds[i] : max;
    }
    return max;
}

Histogram::Snapshot
Histogram::Snapshot::delta(const Snapshot &older) const
{
    if (older.bounds != bounds || older.counts.size() != counts.size())
        return *this;
    Snapshot d = *this;
    for (std::size_t i = 0; i < counts.size(); ++i)
        d.counts[i] -= older.counts[i];
    d.count -= older.count;
    d.sum -= older.sum;
    return d;
}

std::vector<double>
defaultLatencyBucketsUs()
{
    std::vector<double> bounds;
    for (double decade = 1; decade <= 1e9; decade *= 10)
        for (double step : {1.0, 2.0, 5.0}) {
            const double edge = decade * step;
            if (edge > 5e9)
                break;
            bounds.push_back(edge);
        }
    return bounds;
}

double
percentileOf(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const std::size_t rank = std::max<std::size_t>(
        1, std::size_t(std::ceil(q * double(samples.size()))));
    return samples[std::min(rank, samples.size()) - 1];
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &older) const
{
    MetricsSnapshot d = *this;
    for (auto &kv : d.counters) {
        auto it = older.counters.find(kv.first);
        if (it != older.counters.end())
            kv.second -= it->second;
    }
    for (auto &kv : d.histograms) {
        auto it = older.histograms.find(kv.first);
        if (it != older.histograms.end())
            kv.second = kv.second.delta(it->second);
    }
    return d;
}

namespace
{

/** Shortest %g that still distinguishes latency values. */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\"counters\": {";
    bool first = true;
    for (const auto &kv : counters) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + kv.first +
               "\": " + std::to_string(kv.second);
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto &kv : gauges) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + kv.first + "\": " + num(kv.second);
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto &kv : histograms) {
        const Histogram::Snapshot &h = kv.second;
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + kv.first + "\": {";
        out += "\"count\": " + std::to_string(h.count);
        out += ", \"sum\": " + num(h.sum);
        out += ", \"min\": " + num(h.min);
        out += ", \"max\": " + num(h.max);
        out += ", \"mean\": " + num(h.mean());
        out += ", \"p50\": " + num(h.percentile(0.50));
        out += ", \"p95\": " + num(h.percentile(0.95));
        out += ", \"p99\": " + num(h.percentile(0.99));
        out += ", \"buckets\": [";
        // Only occupied buckets: 30 edges x every histogram would
        // drown the snapshot in zeros.
        bool firstBucket = true;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (!h.counts[i])
                continue;
            if (!firstBucket)
                out += ", ";
            firstBucket = false;
            const double edge = i < h.bounds.size()
                                    ? h.bounds[i]
                                    : std::numeric_limits<
                                          double>::infinity();
            out += "[" +
                   (std::isinf(edge) ? std::string("\"inf\"")
                                     : num(edge)) +
                   ", " + std::to_string(h.counts[i]) + "]";
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    MetricsSnapshot s;
    for (const auto &kv : counters_)
        s.counters[kv.first] = kv.second->value();
    for (const auto &kv : gauges_)
        s.gauges[kv.first] = kv.second->value();
    for (const auto &kv : histograms_)
        s.histograms[kv.first] = kv.second->snapshot();
    return s;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace obs
} // namespace lego
