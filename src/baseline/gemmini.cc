#include "baseline/gemmini.hh"

#include <algorithm>
#include <cmath>

namespace lego
{

namespace
{

double
eff(Int dim, int p)
{
    if (dim <= 0 || p <= 0)
        return 1.0;
    Int tiles = ceilDiv(dim, p);
    return double(dim) / double(tiles * p);
}

} // namespace

LayerResult
gemminiLayer(const GemminiConfig &g, const Layer &l)
{
    LayerResult res;
    if (!l.isTensorOp())
        return res; // Non-tensor work is not counted (paper setup).

    Int m = l.gemmM(), n = l.gemmN(), k = l.gemmK();
    res.macs = l.macs();
    const int dim = g.dim;

    // Weight-stationary mapping: K on rows, N on columns, M streams.
    double se = eff(k, dim) * eff(n, dim);
    if (l.kind == LayerKind::DwConv) {
        // One active column per channel group (N = 1 already keeps
        // only 1/16 of the array busy); host-side im2col and
        // row-granular mvin stalls serialize the rest. The 0.25
        // factor anchors MobileNetV2 at the paper's measured
        // ~24 GOP/s for Gemmini.
        se *= 0.25;
    }
    se = std::max(se, 1e-4);

    // Per-tile pipeline: Tm-long stream + array fill/drain, plus the
    // mvin/mvout + weight-load serialization between tiles.
    Int tiles_k = ceilDiv(k, dim), tiles_n = ceilDiv(n, dim);
    Int tm = std::max<Int>(
        1, std::min<Int>(m, (g.scratchpadKb * 1024 / 2) /
                                std::max<Int>(1, 2 * dim)));
    Int tiles_m = ceilDiv(m, tm);
    Int num_tiles = tiles_k * tiles_n * tiles_m;
    // Weight reload costs dim cycles per (k,n) tile per m sweep.
    Int overhead = num_tiles * (2 * dim + 16);
    Int compute =
        Int(std::ceil(double(res.macs) / (double(dim) * dim) / se)) +
        overhead;

    // im2col traffic for convolutions: the unrolled matrix is moved,
    // not the true footprint.
    Int xbytes;
    if (l.kind == LayerKind::Conv || l.kind == LayerKind::DwConv)
        xbytes = m * k; // Full im2col buffer.
    else
        xbytes = l.inputBytes();
    Int wbytes = l.weightBytes();
    Int obytes = l.outputBytes();
    Int traffic = wbytes * tiles_m + xbytes * tiles_n +
                  obytes * (2 * tiles_k - 1);
    res.dramBytes = traffic;
    Int mem = dramCycles(g.dram, traffic, g.freqGhz);

    res.cycles = std::max(compute, mem);
    res.memoryBound = mem > compute;
    res.utilization = double(res.macs) / double(dim * dim) /
                      std::max<double>(1.0, double(res.cycles));

    // Energy: similar MAC cost, higher scratchpad traffic (row/col
    // systolic reuse only), plus DRAM.
    const double mac_pj = 0.30;
    double spad_pj = double(res.macs) * (2.0 / dim) * 0.9;
    double leak_pj = gemminiPowerMw(g) * 0.3 * 1e3 *
                     double(res.cycles) / g.freqGhz * 1e-3;
    res.energyPj = double(res.macs) * mac_pj + spad_pj +
                   dramEnergyPj(g.dram, traffic) + leak_pj;
    return res;
}

RunSummary
gemminiModel(const GemminiConfig &g, const Model &m)
{
    RunSummary sum;
    for (const Layer &l : m.layers) {
        if (!l.isTensorOp())
            continue;
        LayerResult r = gemminiLayer(g, l);
        accumulate(sum, r, true, l.repeat);
    }
    return sum;
}

double
gemminiPowerMw(const GemminiConfig &g)
{
    // 256 MACs + 256 KB scratchpad + RoCC controller, calibrated to
    // the paper's implied on-chip envelope (Fig. 11 GOPS/W rows give
    // ~215 mW for the 16x16 / 256 KB instance at 28 nm, 1 GHz).
    double macs = double(g.dim) * g.dim;
    double array_mw = macs * 640.0 * g.freqGhz / 1e3;
    SramCost sc = sramArrayCost(g.scratchpadKb * 1024, 8, 64);
    double sram_mw =
        (sc.leakageUw +
         0.55 * 8.0 * sc.readEnergyPj * g.freqGhz * 1e3) /
        1e3;
    return array_mw + sram_mw + 30.0;
}

} // namespace lego
