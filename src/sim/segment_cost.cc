#include "sim/segment_cost.hh"

#include <algorithm>

#include "sim/dram.hh"

namespace lego
{

HardwareConfig
partitionConfig(const HardwareConfig &hw, int sliceCols)
{
    if (sliceCols <= 0 || sliceCols > hw.cols)
        panic("partitionConfig: slice of " +
              std::to_string(sliceCols) + " of " +
              std::to_string(hw.cols) + " columns");
    if (sliceCols == hw.cols)
        return hw;
    HardwareConfig sub = hw;
    sub.cols = sliceCols;
    sub.l1Kb = std::max<Int>(1, hw.l1Kb * sliceCols / hw.cols);
    sub.numPpus = std::max(1, hw.numPpus * sliceCols / hw.cols);
    return sub;
}

bool
chainable(const Layer &producer, const Layer &consumer)
{
    if (!producer.isTensorOp() || !consumer.isTensorOp())
        return false;
    if (producer.repeat != consumer.repeat)
        return false;

    const bool pConv = producer.kind == LayerKind::Conv ||
                       producer.kind == LayerKind::DwConv;
    const bool cConv = consumer.kind == LayerKind::Conv ||
                       consumer.kind == LayerKind::DwConv;
    if (pConv && cConv) {
        const Int pOutCh = producer.kind == LayerKind::DwConv
                               ? producer.ic
                               : producer.oc;
        return consumer.n == producer.n && consumer.ic == pOutCh &&
               consumer.oh * consumer.stride == producer.oh &&
               consumer.ow * consumer.stride == producer.ow;
    }
    if (!pConv && !cConv) {
        // Linear/MatMul chains: consumer's M x K operand is the
        // producer's M x N output.
        return consumer.m == producer.m && consumer.k == producer.nOut;
    }
    // Conv <-> GEMM transitions need a layout change (flatten /
    // im2col) that the forwarding buffers do not model; reject.
    return false;
}

SegmentCost
segmentPipelineCost(const HardwareConfig &hw,
                    const std::vector<SegmentStage> &stages,
                    const SramPartitionTable &sram,
                    const NocPartitionTable &noc)
{
    SegmentCost sc;
    const std::size_t S = stages.size();
    if (S == 0)
        return sc;

    sc.feasible = true;
    std::vector<Int> compute(S), residual(S);
    Int maxCompute = 0, totalResidual = 0;
    double stageEnergy = 0;
    Int fill = 0;

    for (std::size_t i = 0; i < S; i++) {
        const SegmentStage &st = stages[i];
        const HardwareConfig sub = partitionConfig(hw, st.cols);
        const Layer &l = st.layer;
        const double se =
            spatialEfficiency(sub, l, st.mapping.dataflow);
        compute[i] = mappingComputeCycles(sub, l, st.mapping, se);
        maxCompute = std::max(maxCompute, compute[i]);

        // Residual DRAM traffic: the whole-stage traffic minus the
        // forwarded flows — a non-first stage reads its input from
        // the producer's buffer (all reload_x passes), a non-last
        // stage's final output write goes to the forwarding buffer.
        // Partial-sum spills (K-tiled accumulation) stay in DRAM.
        const Int n = l.gemmN();
        const Int tn = std::min<Int>(st.mapping.tn, n);
        const Int reload_x = ceilDiv(n, tn);
        Int saved = 0;
        if (i > 0)
            saved += l.inputBytes() * reload_x;
        if (i + 1 < S)
            saved += l.outputBytes();
        residual[i] = std::max<Int>(0, st.result.dramBytes - saved);
        sc.dramBytesSaved += st.result.dramBytes - residual[i];
        totalResidual += residual[i];

        // Buffer occupancy: the mapping's double-buffered working
        // set (mirrors dse fitsL1: operands at dataBits, 24-bit
        // partials) plus, for a producer stage, the double-buffered
        // outgoing intermediate tile it keeps live for the consumer.
        const Int m = l.gemmM(), k = l.gemmK();
        const Int tm = std::min<Int>(st.mapping.tm, m);
        const Int tk = std::min<Int>(st.mapping.tk, k);
        const Int operand =
            (tm * tk + tk * tn) * Int(hw.dataBits) / 8;
        const Int partial = tm * tn * 3;
        const Int ws = 2 * (operand + partial);
        const Int extra = i + 1 < S
                              ? 2 * tm * tn * Int(hw.dataBits) / 8
                              : Int(0);
        sc.bufferBytes += ws + extra;
        if (!sram.fits(st.cols, ws, extra))
            sc.feasible = false;

        stageEnergy += st.result.energyPj;
        // One tile's latency through this stage for the fill term.
        const Int tiles =
            std::max<Int>(1, mappingTileCount(l, st.mapping));
        fill += ceilDiv(compute[i], tiles) + sub.rows + sub.cols + 8;
    }

    // Forwarded flows re-charged at on-chip prices. The intermediate
    // lives in the producer's L1 share; the consumer's reload passes
    // cross the slice boundary over the NoC.
    Int maxNocCycles = 0;
    double savedDramPj = 0;
    for (std::size_t e = 0; e + 1 < S; e++) {
        const SegmentStage &p = stages[e];
        const SegmentStage &c = stages[e + 1];
        const Int cn = c.layer.gemmN();
        const Int ctn = std::min<Int>(c.mapping.tn, cn);
        const Int reload = ceilDiv(cn, ctn);
        const Int fwdWrite = p.layer.outputBytes();
        const Int fwdRead = c.layer.inputBytes() * reload;
        sc.nocBytes += fwdRead;
        const int narrow = std::min(p.cols, c.cols);
        sc.nocEnergyPj +=
            double(fwdRead) * noc.energyPerBytePj(narrow);
        sc.sramEnergyPj +=
            double(fwdWrite) * sram.writeEnergyPj(p.cols) +
            double(fwdRead) * sram.readEnergyPj(p.cols);
        maxNocCycles =
            std::max(maxNocCycles, noc.transferCycles(fwdRead));
    }
    for (std::size_t i = 0; i < S; i++)
        savedDramPj += dramEnergyPj(
            hw.dram, stages[i].result.dramBytes - residual[i]);

    // Steady state: the slowest of any stage's compute pipeline, the
    // shared DRAM interface moving the residual traffic, and the
    // busiest inter-stage NoC stream. Fill: one tile traversing the
    // whole chain before the overlap begins.
    const Int dramSteady =
        dramCycles(hw.dram, totalResidual, hw.freqGhz);
    sc.cycles = std::max({maxCompute, dramSteady, maxNocCycles}) + fill;
    sc.dramBytes = totalResidual;
    sc.energyPj = stageEnergy - savedDramPj + sc.sramEnergyPj +
                  sc.nocEnergyPj;
    return sc;
}

} // namespace lego
