/**
 * @file
 * Pluggable search strategies for the DSE engine. A strategy proposes
 * rounds (batches) of candidate ids; the engine evaluates each round
 * in parallel, folds the results into the Pareto archive in proposal
 * order, and hands the updated archive back for the next round. All
 * randomness lives in the strategy's own SplitMix64 stream, which is
 * advanced only on the engine's reduction thread — results are
 * therefore identical for any worker count.
 */

#ifndef LEGO_DSE_STRATEGY_HH
#define LEGO_DSE_STRATEGY_HH

#include <cstdint>
#include <memory>

#include "dse/candidate_space.hh"
#include "dse/pareto.hh"

namespace lego
{

struct Model;

namespace dse
{

/** Deterministic 64-bit PRNG (SplitMix64). */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next();
    /** Uniform in [0, bound); bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);
    /** Uniform in [0, 1). */
    double unit();

  private:
    std::uint64_t state_;
};

enum class StrategyKind
{
    Exhaustive, //!< Every candidate in index order.
    Random,     //!< Fixed-size uniform sample without replacement.
    Anneal,     //!< Random seed population + local mutation rounds.
    Genetic,    //!< SparseMap-style evolution over candidate digits.
    /**
     * Exhaustive enumeration that skips candidates whose L1 cannot
     * hold even the smallest tile for some layer of the model (the
     * dse::feasible predicate). Needs StrategyOptions::model.
     */
    PrunedExhaustive,
};

std::string strategyName(StrategyKind k);

class Strategy
{
  public:
    virtual ~Strategy() = default;

    /**
     * Propose the next batch of candidate ids (duplicates allowed;
     * the engine de-duplicates against everything already
     * evaluated). An empty batch ends the search.
     */
    virtual std::vector<std::size_t>
    nextBatch(const CandidateSpace &space,
              const ParetoArchive &archive) = 0;

    /** Candidates skipped as infeasible (pruning strategies only). */
    virtual std::size_t pruned() const { return 0; }
};

/** Tuning knobs shared by the stochastic strategies. */
struct StrategyOptions
{
    std::uint64_t seed = 0x1e90ull;
    std::size_t samples = 64; //!< Random: total; Anneal/Genetic: per round.
    int rounds = 6;           //!< Anneal/Genetic rounds after the seed round.
    double mutation = 0.25;   //!< Genetic: per-child mutation probability.
    /**
     * Workload being explored; the engine fills this in for every
     * explore() call. Required by PrunedExhaustive (its feasibility
     * rule is per-model), ignored by the other strategies.
     */
    const Model *model = nullptr;
};

std::unique_ptr<Strategy> makeStrategy(StrategyKind kind,
                                       const StrategyOptions &opt);

} // namespace dse
} // namespace lego

#endif // LEGO_DSE_STRATEGY_HH
