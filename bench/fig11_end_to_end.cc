/**
 * @file
 * Reproduces Fig. 11: end-to-end performance (GOP/s) and energy
 * efficiency (GOPS/W) of Gemmini vs LEGO-MNICOC across seven NN
 * models plus the geomean. Both designs use 256 MACs, 256 KB on-chip
 * buffer and a 16 GB/s 128-bit memory bus, as in the paper.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "lego.hh"

using namespace lego;

namespace
{

struct Row
{
    const char *model;
    double paperGemminiGops, paperLegoGops;
    double paperGemminiEff, paperLegoEff;
};

// Paper values transcribed from Fig. 11.
const Row kPaper[] = {
    {"AlexNet", 118, 241, 549, 847},
    {"MobileNetV2", 24, 310, 113, 1090},
    {"ResNet50", 290, 475, 1346, 1668},
    {"EfficientNetV2", 131, 430, 610, 1513},
    {"BERT", 159, 456, 739, 1603},
    {"GPT-2", 11, 29, 52, 102},
    {"CoAtNet", 143, 441, 666, 1551},
};

} // namespace

int
main()
{
    HardwareConfig hw;
    hw.name = "LEGO-MNICOC";
    hw.rows = hw.cols = 16;
    hw.l1Kb = 256;
    hw.dram.bandwidthGBs = 16.0;
    hw.dataflows = {DataflowTag::MN, DataflowTag::ICOC};

    GemminiConfig gm;
    gm.dram.bandwidthGBs = 16.0;

    ChipCost cc = archCost(hw);
    double lego_mw = cc.totalPowerMw();
    double gem_mw = gemminiPowerMw(gm);
    std::printf("LEGO on-chip: %.2f mm^2, %.0f mW (paper 1.76 / 285); "
                "Gemmini: %.0f mW\n",
                cc.totalAreaMm2(), lego_mw, gem_mw);

    std::printf("=== Fig. 11: end-to-end Gemmini vs LEGO "
                "(256 MACs, 256 KB, 16 GB/s) ===\n");
    std::printf("%-16s | %21s | %21s | %8s\n", "",
                "Perf GOP/s (G -> L)", "Eff GOPS/W (G -> L)",
                "speedup");
    std::printf("%-16s | %10s %10s | %10s %10s | %8s\n", "model",
                "measured", "paper", "measured", "paper", "meas.");

    std::vector<Model> models = fig11Models();
    double sp_prod = 1.0, ef_prod = 1.0;
    double g_gops_prod = 1.0, l_gops_prod = 1.0;
    double g_eff_prod = 1.0, l_eff_prod = 1.0;
    for (size_t i = 0; i < models.size(); i++) {
        const Model &m = models[i];
        ScheduleResult lego = scheduleModel(hw, m);
        RunSummary gem = gemminiModel(gm, m);

        double l_gops = lego.summary.gops(hw.freqGhz);
        double g_gops = gem.gops(gm.freqGhz);
        // The paper's GOPS/W divides by *on-chip* power (Fig. 12a's
        // 285 mW envelope reproduces its ResNet50 row exactly).
        double l_eff = l_gops / (lego_mw / 1e3);
        double g_eff = g_gops / (gem_mw / 1e3);

        std::printf("%-16s | %4.0f->%4.0f  %4.0f->%4.0f | "
                    "%4.0f->%4.0f  %4.0f->%4.0f | %6.1fx\n",
                    m.name.c_str(), g_gops, l_gops,
                    kPaper[i].paperGemminiGops, kPaper[i].paperLegoGops,
                    g_eff, l_eff, kPaper[i].paperGemminiEff,
                    kPaper[i].paperLegoEff, l_gops / g_gops);
        sp_prod *= l_gops / g_gops;
        ef_prod *= l_eff / g_eff;
        g_gops_prod *= g_gops;
        l_gops_prod *= l_gops;
        g_eff_prod *= g_eff;
        l_eff_prod *= l_eff;
    }
    double n = double(models.size());
    std::printf("%-16s | %4.0f->%4.0f  %4.0f->%4.0f | "
                "%4.0f->%4.0f  %4.0f->%4.0f |\n", "geomean",
                std::pow(g_gops_prod, 1 / n),
                std::pow(l_gops_prod, 1 / n), 83.0, 264.0,
                std::pow(g_eff_prod, 1 / n),
                std::pow(l_eff_prod, 1 / n), 387.0, 927.0);
    std::printf("geomean speedup: %.2fx (paper 3.2x), "
                "energy saving: %.2fx (paper 2.4x)\n",
                std::pow(sp_prod, 1 / n), std::pow(ef_prod, 1 / n));
    return 0;
}
