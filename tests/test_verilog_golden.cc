/**
 * @file
 * Verilog emission structural tests beyond linting: the netlist must
 * contain exactly the live primitives of the optimized DAG, address
 * generators must carry the per-config constants, programmable FIFOs
 * must appear only on config-varying edges, and the memory interface
 * must expose one port set per live MemRead/MemWrite.
 */

#include <gtest/gtest.h>

#include "lego.hh"

namespace lego
{
namespace
{

size_t
countOf(const std::string &hay, const std::string &needle)
{
    size_t n = 0, pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
        n++;
        pos += needle.size();
    }
    return n;
}

struct Built
{
    Adg adg;
    CodegenResult gen;
    std::string rtl;
};

Built
build(Workload &w, const DataflowSpec &spec, const std::string &top)
{
    Built b;
    b.adg = generateArchitecture({{&w, buildDataflow(w, spec)}});
    b.gen = codegen(b.adg);
    runBackend(b.gen);
    b.rtl = emitVerilog(b.gen, top);
    return b;
}

TEST(VerilogGolden, MemoryInterfaceComplete)
{
    Workload w = makeGemm(8, 8, 8);
    Built b = build(
        w, makeSimpleSpec(w, "ij", {{"i", 2}, {"j", 2}}, false),
        "t");
    // One addr/data pair per live read port, plus we/addr/data per
    // write port.
    size_t reads = b.gen.dag.nodesOf(PrimOp::MemRead).size();
    size_t writes = b.gen.dag.nodesOf(PrimOp::MemWrite).size();
    EXPECT_EQ(countOf(b.rtl, "_we = en;"), writes);
    EXPECT_GE(countOf(b.rtl, "_addr"), reads + writes);
    EXPECT_EQ(lintVerilog(b.rtl), "");
}

TEST(VerilogGolden, AddrGenConstantsBaked)
{
    Workload w = makeGemm(8, 8, 8);
    Built b = build(
        w, makeSimpleSpec(w, "ij", {{"i", 2}, {"j", 2}}, false),
        "t2");
    // Address generators use inline div/mod digit decode with the
    // loop radices as constants.
    EXPECT_GT(countOf(b.rtl, "module t2_ag_"), 0u);
    EXPECT_GT(countOf(b.rtl, "(t/"), 0u);
    EXPECT_GT(countOf(b.rtl, "case (cfg[3:0])"), 0u);
}

TEST(VerilogGolden, SystolicHasPipesNotFifos)
{
    // A single systolic config has fixed skews: lego_pipe instances,
    // and no per-config programmable FIFO needed on operand edges.
    Workload w = makeGemm(8, 8, 8);
    DataflowSpec spec;
    spec.name = "kj";
    spec.temporal = {{"i", 8}, {"j", 4}, {"k", 4}};
    spec.spatial = {{"k", 2}, {"j", 2}};
    spec.cflow = {1, 1};
    Built b = build(w, spec, "t3");
    EXPECT_GT(countOf(b.rtl, "lego_pipe #("), 1u);
    EXPECT_EQ(lintVerilog(b.rtl), "");
}

TEST(VerilogGolden, ReduceEmitsGatedSum)
{
    Workload w = makeGemm(4, 4, 8);
    Built b = build(
        w, makeSimpleSpec(w, "kj", {{"k", 4}, {"j", 2}}, false),
        "t4");
    ASSERT_FALSE(b.gen.dag.nodesOf(PrimOp::Reduce).empty());
    // The reduce output is a config-gated sum expression.
    EXPECT_GT(countOf(b.rtl, "w_red_"), 0u);
}

TEST(VerilogGolden, EveryLiveNodeHasAWire)
{
    Workload w = makeMttkrp(4, 4, 4, 4);
    Built b = build(
        w, makeSimpleSpec(w, "ij", {{"i", 2}, {"j", 2}}, false),
        "t5");
    const Dag &dag = b.gen.dag;
    for (int v = 0; v < dag.numNodes(); v++) {
        if (dag.node(v).dead)
            continue;
        EXPECT_NE(b.rtl.find("w_" + dag.node(v).name),
                  std::string::npos)
            << "missing wire for " << dag.node(v).name;
    }
}

} // namespace
} // namespace lego
