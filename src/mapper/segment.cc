#include "mapper/segment.hh"

#include <algorithm>

#include "mapper/schedule.hh"

namespace lego
{

SegmentPlan
singletonPlan(const Model &m)
{
    SegmentPlan plan;
    plan.segments.reserve(m.layers.size());
    for (std::size_t i = 0; i < m.layers.size(); ++i) {
        Segment s;
        s.first = i;
        s.len = 1;
        plan.segments.push_back(std::move(s));
    }
    return plan;
}

std::vector<std::pair<std::size_t, std::size_t>>
chainRuns(const Model &m)
{
    std::vector<std::pair<std::size_t, std::size_t>> runs;
    std::size_t start = 0;
    std::size_t len = 0;
    for (std::size_t i = 0; i < m.layers.size(); ++i) {
        if (len > 0 &&
            chainable(m.layers[i - 1], m.layers[i])) {
            ++len;
            continue;
        }
        if (len >= 2)
            runs.emplace_back(start, len);
        start = i;
        len = m.layers[i].isTensorOp() ? 1 : 0;
    }
    if (len >= 2)
        runs.emplace_back(start, len);
    return runs;
}

namespace
{

void
validatePlan(const Model &m, const SegmentPlan &plan)
{
    std::size_t next = 0;
    for (const Segment &s : plan.segments) {
        if (s.first != next || s.len == 0)
            panic("segment plan does not cover the layer list");
        if (s.pipelined() && s.stages.size() != s.len)
            panic("pipelined segment is missing stage data");
        next = s.first + s.len;
    }
    if (next != m.layers.size())
        panic("segment plan does not cover the layer list");
}

} // namespace

ScheduleResult
composeSchedule(const Model &m,
                std::vector<dse::MappingFrontier> fronts,
                const ComposeOptions &opt, const SegmentPlan &plan)
{
    validatePlan(m, plan);
    ScheduleResult out = composeSchedule(m, std::move(fronts), opt);

    // Apply the plan: override member decisions of pipelined
    // segments, then re-accumulate the summary in one ordered pass.
    // With an all-singleton plan both loops below replay exactly the
    // accumulate sequence of the layer-valued path (same values,
    // same order), so the result is bit-identical.
    out.summary = RunSummary{};
    for (const Segment &s : plan.segments) {
        if (!s.pipelined()) {
            for (std::size_t i = s.first; i < s.first + s.len; ++i) {
                const Layer &l = m.layers[i];
                accumulate(out.summary, out.perLayer[i].result,
                           l.isTensorOp(), l.repeat);
            }
            continue;
        }
        // Pipelined: charge the segment's cost once, at the
        // segment's position, expanded by the (uniform) repeat.
        LayerResult agg;
        agg.cycles = s.cost.cycles;
        agg.energyPj = s.cost.energyPj;
        agg.dramBytes = s.cost.dramBytes;
        for (const SegmentStage &st : s.stages)
            agg.macs += st.result.macs;
        accumulate(out.summary, agg, true,
                   m.layers[s.first].repeat);
        for (std::size_t j = 0; j < s.stages.size(); ++j) {
            MappedLayer ml;
            ml.mapping = s.stages[j].mapping;
            ml.result = s.stages[j].result;
            out.perLayer[s.first + j] = ml;
        }
    }
    out.segments = plan.segments;
    return out;
}

} // namespace lego
