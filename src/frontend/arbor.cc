#include "frontend/arbor.hh"

#include <algorithm>
#include <limits>

namespace lego
{

namespace
{

constexpr Int kInf = std::numeric_limits<Int>::max() / 4;

/**
 * One level of Chu-Liu/Edmonds: choose cheapest in-edges; if they are
 * acyclic we are done, otherwise contract every cycle, recurse on the
 * quotient graph, and expand. Edge selection is reported through the
 * caller-provided `id` tags, which survive contraction.
 */
std::optional<std::vector<int>>
solveLevel(int n, int root, const std::vector<ArborEdge> &edges)
{
    std::vector<Int> best(size_t(n), kInf);
    std::vector<int> bestIdx(size_t(n), -1);
    for (size_t i = 0; i < edges.size(); i++) {
        const ArborEdge &e = edges[i];
        if (e.to == root || e.from == e.to)
            continue;
        if (e.cost < best[size_t(e.to)]) {
            best[size_t(e.to)] = e.cost;
            bestIdx[size_t(e.to)] = int(i);
        }
    }
    for (int v = 0; v < n; v++)
        if (v != root && bestIdx[size_t(v)] < 0)
            return std::nullopt; // Unreachable node.

    // Walk parent pointers to find cycles.
    std::vector<int> visitEpoch(size_t(n), -1);
    std::vector<int> comp(size_t(n), -1);
    std::vector<bool> inCycle(size_t(n), false);
    int numComp = 0;
    for (int v = 0; v < n; v++) {
        if (comp[size_t(v)] >= 0)
            continue;
        int u = v;
        while (u != root && comp[size_t(u)] < 0 &&
               visitEpoch[size_t(u)] != v) {
            visitEpoch[size_t(u)] = v;
            u = edges[size_t(bestIdx[size_t(u)])].from;
        }
        if (u != root && comp[size_t(u)] < 0 &&
            visitEpoch[size_t(u)] == v) {
            // Fresh cycle through u.
            int c = numComp++;
            int w = u;
            do {
                comp[size_t(w)] = c;
                inCycle[size_t(w)] = true;
                w = edges[size_t(bestIdx[size_t(w)])].from;
            } while (w != u);
        }
    }
    const bool hasCycle = numComp > 0;
    for (int v = 0; v < n; v++)
        if (comp[size_t(v)] < 0)
            comp[size_t(v)] = numComp++;

    if (!hasCycle) {
        std::vector<int> ids;
        for (int v = 0; v < n; v++)
            if (v != root)
                ids.push_back(edges[size_t(bestIdx[size_t(v)])].id);
        return ids;
    }

    // Contract cycles. An edge entering a cycle node v competes with
    // the cycle's own in-edge at v, so its reduced cost is
    // cost - best[v]; choosing it in the quotient graph displaces
    // bestIdx[v] in the expansion.
    struct Tag
    {
        int originalIdx;
        int displacedIdx;
    };
    std::vector<ArborEdge> quotient;
    std::vector<Tag> tags;
    for (size_t i = 0; i < edges.size(); i++) {
        const ArborEdge &e = edges[i];
        int cu = comp[size_t(e.from)], cv = comp[size_t(e.to)];
        if (cu == cv)
            continue;
        ArborEdge ne;
        ne.from = cu;
        ne.to = cv;
        ne.id = int(tags.size());
        if (inCycle[size_t(e.to)]) {
            ne.cost = e.cost - best[size_t(e.to)];
            tags.push_back({int(i), bestIdx[size_t(e.to)]});
        } else {
            ne.cost = e.cost;
            tags.push_back({int(i), -1});
        }
        quotient.push_back(ne);
    }

    auto sub = solveLevel(numComp, comp[size_t(root)], quotient);
    if (!sub)
        return std::nullopt;

    // Expansion: keep every cycle in-edge except the displaced ones,
    // plus the original edges chosen in the quotient.
    std::vector<bool> displaced(edges.size(), false);
    std::vector<int> ids;
    for (int qid : *sub) {
        const Tag &t = tags[size_t(qid)];
        ids.push_back(edges[size_t(t.originalIdx)].id);
        if (t.displacedIdx >= 0)
            displaced[size_t(t.displacedIdx)] = true;
    }
    for (int v = 0; v < n; v++) {
        if (!inCycle[size_t(v)])
            continue;
        int bi = bestIdx[size_t(v)];
        if (!displaced[size_t(bi)])
            ids.push_back(edges[size_t(bi)].id);
    }
    return ids;
}

} // namespace

std::optional<std::vector<int>>
minArborescence(int n, int root, const std::vector<ArborEdge> &edges)
{
    if (n <= 0 || root < 0 || root >= n)
        panic("minArborescence: bad root/size");
    return solveLevel(n, root, edges);
}

} // namespace lego
