#include "dse/engine.hh"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "obs/trace.hh"

namespace lego
{
namespace dse
{

DseEngine::DseEngine(DseOptions opt)
    : opt_(std::move(opt)), cache_(), pool_(opt_.threads),
      evaluator_(&cache_, opt_.eval)
{
    // Capacity first, so even the warm-start load below respects the
    // bound (a persisted cache larger than the budget evicts down
    // during the merge instead of overshooting).
    if (opt_.cacheMaxBytes != 0 || opt_.cacheMaxEntries != 0)
        cache_.setCapacity(opt_.cacheMaxBytes, opt_.cacheMaxEntries);
    // Warm-start from the persisted cache when one is configured; a
    // missing or stale (schema-mismatched) file is just a cold
    // start, and a CORRUPT file is quarantined to `<path>.corrupt`
    // so the next saveCache() starts from a clean slate.
    if (!opt_.cachePath.empty())
        cache_.loadOrQuarantine(opt_.cachePath);
    // Attach the read-mostly mmap tier last: a not-yet-published
    // snapshot is fine (refreshShared picks it up later).
    if (!opt_.sharedCachePath.empty())
        cache_.attachShared(opt_.sharedCachePath);
}

bool
DseEngine::saveCache() const
{
    if (opt_.cachePath.empty())
        return false;
    return cache_.save(opt_.cachePath);
}

StatsEpoch
DseEngine::beginEpoch() const
{
    StatsEpoch e;
    e.cache = cache_.counters();
    e.eval = evaluator_.counters();
    e.start = std::chrono::steady_clock::now();
    return e;
}

DseStats
DseEngine::statsSince(const StatsEpoch &e) const
{
    DseStats s;
    const CacheCounters cc = cache_.counters() - e.cache;
    s.cacheHits = cc.hits;
    s.cacheMisses = cc.misses;
    s.l0Hits = cc.l0Hits;
    s.l0Misses = cc.l0Misses;
    s.frontHits = cc.frontHits;
    s.frontMisses = cc.frontMisses;
    s.segHits = cc.segHits;
    s.segMisses = cc.segMisses;
    s.evictions = cc.evictions;
    s.sharedHits = cc.sharedHits;
    s.sharedFrontHits = cc.sharedFrontHits;
    s.sharedSegHits = cc.sharedSegHits;
    // Gauges carry the window-close reading (CacheCounters::operator-
    // does not difference them).
    s.residentBytes = cc.residentBytes;
    s.generation = cc.generation;
    const EvalCounters ec = evaluator_.counters();
    s.modelEvals = ec.modelEvals - e.eval.modelEvals;
    s.mappingsPruned = ec.mappingsPruned - e.eval.mappingsPruned;
    s.dataflowsPruned = ec.dataflowsPruned - e.eval.dataflowsPruned;
    s.layersDeduped = ec.layersDeduped - e.eval.layersDeduped;
    s.crossModelDeduped =
        ec.crossModelDeduped - e.eval.crossModelDeduped;
    s.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - e.start)
            .count();
    return s;
}

void
DseEngine::publishMetrics(obs::MetricsRegistry &registry) const
{
    const CacheCounters cc = cache_.counters();
    registry.counter("dse.cache.l0_hits").set(cc.l0Hits);
    registry.counter("dse.cache.l0_misses").set(cc.l0Misses);
    registry.counter("dse.cache.l1_hits").set(cc.hits);
    registry.counter("dse.cache.l1_misses").set(cc.misses);
    registry.counter("dse.cache.inserts").set(cc.inserts);
    registry.counter("dse.cache.front_hits").set(cc.frontHits);
    registry.counter("dse.cache.front_misses").set(cc.frontMisses);
    registry.counter("dse.cache.front_inserts").set(cc.frontInserts);
    registry.counter("dse.cache.seg_hits").set(cc.segHits);
    registry.counter("dse.cache.seg_misses").set(cc.segMisses);
    registry.counter("dse.cache.seg_inserts").set(cc.segInserts);
    registry.counter("dse.cache.quarantined").set(cc.quarantined);
    registry.counter("dse.cache.evictions").set(cc.evictions);
    registry.counter("dse.cache.shared_hits").set(cc.sharedHits);
    registry.counter("dse.cache.shared_front_hits")
        .set(cc.sharedFrontHits);
    registry.counter("dse.cache.shared_seg_hits")
        .set(cc.sharedSegHits);
    registry.counter("dse.cache.remaps").set(cc.remaps);
    const EvalCounters ec = evaluator_.counters();
    registry.counter("dse.eval.searches").set(ec.searches);
    registry.counter("dse.eval.model_evals").set(ec.modelEvals);
    registry.counter("dse.eval.mappings_pruned")
        .set(ec.mappingsPruned);
    registry.counter("dse.eval.dataflows_pruned")
        .set(ec.dataflowsPruned);
    registry.counter("dse.eval.layers_deduped")
        .set(ec.layersDeduped);
    registry.counter("dse.eval.cross_model_deduped")
        .set(ec.crossModelDeduped);
    const SegmentSearchStats seg = segmentStats();
    registry.counter("dse.segment.runs").set(seg.chainRuns);
    registry.counter("dse.segment.moves").set(seg.movesTried);
    registry.counter("dse.segment.plans").set(seg.plansEvaluated);
    registry.counter("dse.segment.infeasible").set(seg.infeasible);
    registry.counter("dse.segment.accepted").set(seg.accepted);
    registry.gauge("dse.cache.entries").set(double(cache_.size()));
    registry.gauge("dse.cache.frontier_entries")
        .set(double(cache_.frontierCount()));
    registry.gauge("dse.cache.segment_entries")
        .set(double(cache_.segmentCount()));
    registry.gauge("dse.cache.resident_bytes")
        .set(double(cc.residentBytes));
    registry.gauge("dse.cache.generation").set(double(cc.generation));
}

DseResult
DseEngine::explore(const CandidateSpace &space, const Model &m,
                   const CancelToken *cancel)
{
    LEGO_TRACE_SPAN_ARG("dse.explore", "dse", "space",
                        space.size());
    const StatsEpoch epoch = beginEpoch();
    DseResult res;

    StrategyOptions sopt;
    sopt.seed = opt_.seed;
    sopt.samples = opt_.samples;
    sopt.rounds = opt_.rounds;
    sopt.mutation = opt_.mutation;
    sopt.model = &m;
    std::unique_ptr<Strategy> strat =
        makeStrategy(opt_.strategy, sopt);

    // Every candidate is scored at most once per explore() call;
    // strategies are free to re-propose ids.
    std::unordered_set<std::size_t> evaluated;

    for (;;) {
        // Batch boundary is the cancellation chunk: everything
        // already evaluated has folded into the archive, so stopping
        // here returns a coherent best-so-far frontier.
        if (cancel && cancel->shouldStop()) {
            cancel->noteDegraded();
            res.degraded = true;
            break;
        }
        std::vector<std::size_t> batch =
            strat->nextBatch(space, res.archive);
        if (batch.empty())
            break;
        res.stats.proposed += batch.size();

        // Fresh ids only, preserving proposal order.
        std::vector<std::size_t> fresh;
        for (std::size_t id : batch) {
            if (evaluated.count(id))
                continue;
            if (opt_.maxEvals &&
                res.stats.evaluated + fresh.size() >= opt_.maxEvals)
                break;
            evaluated.insert(id);
            fresh.push_back(id);
        }

        // Fan the batch across the pool; each slot is written by
        // exactly one worker.
        LEGO_TRACE_SPAN_ARG("dse.exploreBatch", "dse", "n",
                            fresh.size());
        std::vector<DsePoint> points(fresh.size());
        pool_.parallelFor(fresh.size(), [&](std::size_t i) {
            points[i] =
                evaluator_.evaluate(space.decode(fresh[i]), m,
                                    fresh[i]);
        });

        // Ordered reduction: archive updates in proposal order.
        for (const DsePoint &p : points)
            res.archive.insert(p);
        res.stats.evaluated += fresh.size();
        if (opt_.maxEvals && res.stats.evaluated >= opt_.maxEvals)
            break;
    }

    // Counter deltas through the shared epoch hooks; the
    // strategy-level numbers accumulated above are preserved.
    const std::size_t proposed = res.stats.proposed;
    const std::size_t evaluatedCount = res.stats.evaluated;
    res.stats = statsSince(epoch);
    res.stats.proposed = proposed;
    res.stats.evaluated = evaluatedCount;
    res.stats.pruned = strat->pruned();
    return res;
}

ScheduleResult
DseEngine::mapModel(const HardwareConfig &hw, const Model &m)
{
    LEGO_TRACE_SPAN_ARG("dse.mapModel", "dse", "layers",
                        m.layers.size());
    return evaluator_.mapModel(hw, m, &pool_);
}

ScheduleResult
DseEngine::mapModelComposed(const HardwareConfig &hw, const Model &m)
{
    LEGO_TRACE_SPAN_ARG("dse.mapModelComposed", "dse", "k",
                        opt_.compose.frontierK);
    std::vector<MappingFrontier> fronts = evaluator_.mapModelFrontier(
        hw, m, opt_.compose.frontierK, &pool_);
    LEGO_TRACE_SPAN_ARG("dse.compose", "dse", "layers",
                        fronts.size());
    if (!opt_.compose.segment.enable)
        return composeSchedule(m, std::move(fronts), opt_.compose);
    const SegmentPlan plan =
        searchSegmentPlan(hw, m, opt_.compose.segment);
    return composeSchedule(m, std::move(fronts), opt_.compose, plan);
}

SegmentPlan
DseEngine::searchSegmentPlan(const HardwareConfig &hw, const Model &m,
                             const SegmentOptions &sopt,
                             const CancelToken *cancel)
{
    SegmentSearchStats stats;
    SegmentPlan plan =
        searchSegments(hw, m, evaluator_, sopt, &stats, cancel);
    // Overlapped serve requests run this from several threads; the
    // plain-int accumulation must be serialized (the search itself
    // is independent per call — only the roll-up is shared).
    std::lock_guard<std::mutex> lk(segMu_);
    segStats_.chainRuns += stats.chainRuns;
    segStats_.movesTried += stats.movesTried;
    segStats_.plansEvaluated += stats.plansEvaluated;
    segStats_.infeasible += stats.infeasible;
    segStats_.accepted += stats.accepted;
    segStats_.cacheHits += stats.cacheHits;
    segStats_.cacheMisses += stats.cacheMisses;
    return plan;
}

std::vector<ScheduleResult>
DseEngine::mapZoo(const HardwareConfig &hw,
                  const std::vector<const Model *> &zoo)
{
    LEGO_TRACE_SPAN_ARG("dse.mapZoo", "dse", "models", zoo.size());
    return evaluator_.mapZoo(hw, zoo, &pool_);
}

DsePoint
DseEngine::evaluate(const HardwareConfig &hw, const Model &m)
{
    return evaluator_.evaluate(hw, m);
}

} // namespace dse
} // namespace lego
