/**
 * @file
 * `lego_serve`: the serving-loop driver. Replays a request trace
 * (default: the checked-in examples/serve_trace.jsonl — MobileNetV2 +
 * EfficientNetV2 + BERT under varying objectives, budgets, and K)
 * TWICE against one cache file:
 *
 *   pass 1 (cold)  fresh ServeLoop, empty cache file, flush on
 *                  shutdown;
 *   pass 2 (warm)  a NEW ServeLoop — a process restart in miniature —
 *                  warm-started from the flushed cache.
 *
 * Exit code 0 requires the serving invariants to hold:
 *   - every request of both passes succeeded,
 *   - the two passes' schedules are bit-identical (warm answers are
 *     exactly the cold answers),
 *   - the warm pass made zero performance-model evaluations and hit
 *     >= 90% of its frontier-memo lookups.
 *
 * CI runs this as the serve-smoke step of all three jobs.
 *
 * Flags:
 *   --trace FILE    request trace (missing default falls back to the
 *                   built-in demo trace; an explicit missing FILE is
 *                   an error)
 *   --cache FILE    cache file shared by the passes
 *                   (default lego_serve.cache, removed on success)
 *   --threads N     worker-pool size (default 1)
 *   --keep-cache    keep the cache file for later warm starts
 *   --print-trace   print the built-in demo trace (the generator of
 *                   examples/serve_trace.jsonl) and exit
 *   --calibrate     print each trace model's composition extremes
 *                   (best-latency vs min-energy totals at K = 8) —
 *                   the numbers trace budgets are chosen between
 *   --chaos         fault-injection replay: one scenario per builtin
 *                   failpoint (cache save/load seams, request parse,
 *                   worker dispatch) plus overload-shedding and
 *                   deadline-degradation scenarios. Exits nonzero
 *                   unless EVERY injected fault degrades gracefully
 *                   (structured error or degraded response; the loop
 *                   never crashes, the cache file survives failed
 *                   saves). CI runs this as the chaos-smoke step.
 *
 * SIGINT/SIGTERM initiate a graceful shutdown: the handler only sets
 * a flag; the main thread stops submitting at the next trace line,
 * drains what was admitted, flushes the cache and stats, and exits
 * with 128 + signo.
 *
 * Multi-process shared-cache mode:
 *   --shared-cache FILE  single-pass READER replay: attach FILE as
 *                        the mmap'd read-mostly cache tier (no
 *                        private cache file, L0/L1 start empty) and
 *                        replay the trace once. Exit 0 requires
 *                        every request ok, zero model evaluations,
 *                        >= 90% frontier hit rate, and >= 1 frontier
 *                        hit actually served from the mapped tier —
 *                        i.e. all warmth demonstrably came from the
 *                        published snapshot. A writer publishes that
 *                        snapshot with the normal two-pass mode plus
 *                        --keep-cache; CI runs one writer then N
 *                        concurrent readers and cmps their
 *                        --responses-out dumps bit-for-bit.
 *
 * Observability (all optional, all off the result path — the replay
 * gates above hold bit-exactly with these on or off):
 *   --trace-out FILE   enable tracing and write a Chrome trace_event
 *                      JSON covering both passes (open in Perfetto
 *                      or chrome://tracing)
 *   --stats-out FILE   metrics snapshot (build info, serve latency
 *                      histograms, engine/cache counters) written at
 *                      each pass's shutdown
 *   --access-log FILE  one JSON line per answered request, both
 *                      passes appended, rejected requests included
 *   --responses-out FILE  canonical response dump (one line per
 *                      response; doubles as raw bit patterns), the
 *                      byte-comparable form behind the
 *                      multi-process bit-identity gate. Two-pass
 *                      mode dumps the warm pass; --shared-cache
 *                      mode dumps its single pass.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>

#include "lego.hh"
#include "obs/build_info.hh"
#include "obs/failpoint.hh"
#include "obs/trace.hh"

using namespace lego;

namespace
{

/** Set by the SIGINT/SIGTERM handler; everything else happens on the
 *  main thread (the handler must not touch the ServeLoop — flag-based
 *  shutdown is what makes the handler-vs-destructor race impossible:
 *  shutdown() only ever runs from main). */
volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onSignal(int sig)
{
    g_signal = sig;
}

struct PassNumbers
{
    std::vector<serve::ServeResponse> responses;
    std::uint64_t modelEvals = 0;
    std::uint64_t frontHits = 0;
    std::uint64_t frontMisses = 0;
    std::uint64_t sharedFrontHits = 0;
    double wallSeconds = 0;

    double frontierHitRate() const
    {
        const std::uint64_t total = frontHits + frontMisses;
        return total ? double(frontHits) / double(total) : 0.0;
    }
};

/** A double's exact bit pattern, so the canonical dump compares
 *  bit-for-bit instead of through decimal round-trips. */
std::uint64_t
bitsOf(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/**
 * Canonical response dump: one line per response carrying the full
 * comparable payload (the sameResponse fields — outcome, identity,
 * flags, every per-layer mapping and result, every summary) with
 * doubles as raw bit patterns. Two readers of the same snapshot must
 * produce byte-identical dumps; `cmp` is the multi-process gate.
 */
bool
dumpResponses(const std::string &path,
              const std::vector<serve::ServeResponse> &responses)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    for (const serve::ServeResponse &r : responses) {
        out << r.seq << ' ' << r.id << " ok=" << r.ok
            << " degraded=" << r.degraded << " shed=" << r.shed
            << " err=\"" << r.error << "\" models=";
        for (const std::string &m : r.models)
            out << m << ',';
        for (const ScheduleResult &s : r.schedules) {
            out << " | " << std::hex;
            for (const MappedLayer &ml : s.perLayer)
                out << int(ml.mapping.dataflow) << '.'
                    << ml.mapping.tm << '.' << ml.mapping.tn << '.'
                    << ml.mapping.tk << '.' << ml.result.cycles
                    << '.' << bitsOf(ml.result.energyPj) << '.'
                    << ml.result.dramBytes << ' ';
            out << "sum=" << s.summary.totalCycles << '.'
                << s.summary.tensorCycles << '.'
                << s.summary.ppuCycles << '.'
                << bitsOf(s.summary.totalEnergyPj) << '.'
                << s.summary.totalMacs << '.' << s.summary.dramBytes
                << " segs=" << s.segments.size() << std::dec;
        }
        out << '\n';
    }
    return static_cast<bool>(out);
}

HardwareConfig
servingConfig()
{
    HardwareConfig hw; // The paper's 16x16 MN/IC-OC deployment.
    hw.name = "LEGO-SERVE";
    return hw;
}

/** One raw trace line with its 1-based source line number, so parse
 *  errors and the access log can cite the exact line. */
struct TraceLine
{
    std::string text;
    std::size_t lineNo = 0;
};

/** Read request lines (blank / #-comment lines skipped) keeping
 *  their file line numbers. False when the file can't be opened. */
bool
loadTraceLines(const std::string &path, std::vector<TraceLine> *out,
               std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        *err = "cannot open trace file " + path;
        return false;
    }
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::size_t at = line.find_first_not_of(" \t\r");
        if (at == std::string::npos || line[at] == '#')
            continue;
        out->push_back({line, lineNo});
    }
    return true;
}

struct ObsPaths
{
    std::string accessLog;
    std::string stats;
};

PassNumbers
runPass(const char *label, const std::vector<TraceLine> &lines,
        const std::string &cachePath, int threads,
        const ObsPaths &obsPaths,
        const std::string &sharedCachePath = "")
{
    serve::ServeOptions sopt;
    sopt.hw = servingConfig();
    sopt.dse.threads = threads;
    // Reader mode: no private cache file at all — every warm answer
    // must come through the mmap'd shared tier.
    if (sharedCachePath.empty())
        sopt.dse.cachePath = cachePath;
    sopt.sharedCachePath = sharedCachePath;
    sopt.accessLogPath = obsPaths.accessLog;
    sopt.statsPath = obsPaths.stats;
    serve::ServeLoop loop(sopt);
    for (const TraceLine &line : lines) {
        if (g_signal)
            break; // Graceful: admitted requests still drain below.
        loop.submitLine(line.text, line.lineNo);
    }
    loop.drain();

    PassNumbers pass;
    pass.responses = loop.responses();
    for (const serve::ServeResponse &r : pass.responses) {
        const dse::DseStats &s = r.stats.dse;
        pass.modelEvals += s.modelEvals;
        pass.frontHits += s.frontHits;
        pass.frontMisses += s.frontMisses;
        pass.sharedFrontHits += s.sharedFrontHits;
        pass.wallSeconds += s.wallSeconds;
        double cycles = 0, energy = 0;
        for (const ScheduleResult &sched : r.schedules) {
            cycles += double(sched.summary.totalCycles);
            energy += sched.summary.totalEnergyPj;
        }
        std::printf("  [%llu] %-14s %s models=%zu k=%zu "
                    "cycles=%.3e energy=%.3epJ evals=%llu "
                    "front=%llu/%llu dedup=%llu/%llu wall=%.3fs%s%s\n",
                    (unsigned long long)r.seq, r.id.c_str(),
                    r.ok ? "ok " : "ERR", r.models.size(),
                    r.compose.frontierK, cycles, energy,
                    (unsigned long long)s.modelEvals,
                    (unsigned long long)s.frontHits,
                    (unsigned long long)(s.frontHits + s.frontMisses),
                    (unsigned long long)s.layersDeduped,
                    (unsigned long long)s.crossModelDeduped,
                    s.wallSeconds, r.ok ? "" : " — ",
                    r.ok ? "" : r.error.c_str());
    }
    if (!loop.shutdown())
        std::printf("  warning: cache flush to %s failed\n",
                    cachePath.c_str());
    std::printf("pass %-5s %zu requests, evals=%llu, frontier "
                "hits %llu/%llu (%.1f%%), wall=%.3fs\n",
                label, pass.responses.size(),
                (unsigned long long)pass.modelEvals,
                (unsigned long long)pass.frontHits,
                (unsigned long long)(pass.frontHits +
                                     pass.frontMisses),
                100.0 * pass.frontierHitRate(), pass.wallSeconds);
    return pass;
}

/** Composition extremes per distinct trace model: the budget range. */
void
calibrate(const std::vector<serve::ServeRequest> &trace)
{
    std::set<std::string> names;
    for (const serve::ServeRequest &req : trace)
        for (const std::string &name : req.models)
            names.insert(name);
    const HardwareConfig hw = servingConfig();
    dse::DseEngine engine;
    for (const std::string &name : names) {
        Model m;
        if (!serve::lookupModel(name, &m)) {
            std::printf("%-16s unknown model\n", name.c_str());
            continue;
        }
        ComposeOptions copt;
        copt.frontierK = 8;
        ScheduleResult fast = engine.mapModelComposed(hw, m);
        copt.latencyBudgetCycles = 1e30; // Min-energy extreme.
        ScheduleResult lean = composeSchedule(
            m,
            engine.evaluator().mapModelFrontier(hw, m, 8,
                                                &engine.pool()),
            copt);
        std::printf("%-16s best-latency %.6e cyc / %.6e pJ — "
                    "min-energy %.6e cyc / %.6e pJ\n",
                    name.c_str(),
                    double(fast.summary.totalCycles),
                    fast.summary.totalEnergyPj,
                    double(lean.summary.totalCycles),
                    lean.summary.totalEnergyPj);
    }
}

/** One chaos scenario's observable outcome. */
struct ChaosPass
{
    std::vector<serve::ServeResponse> responses;
    bool flushOk = true;
    std::uint64_t modelEvals = 0;  //!< 0 = the pass ran fully warm.
    std::uint64_t quarantined = 0; //!< Cache files quarantined.
};

ChaosPass
runChaosPass(const std::vector<TraceLine> &lines,
             const std::string &cachePath, int threads,
             const std::string &statsPath,
             std::size_t maxQueueDepth = 0)
{
    serve::ServeOptions sopt;
    sopt.hw = servingConfig();
    sopt.dse.threads = threads;
    sopt.dse.cachePath = cachePath;
    sopt.statsPath = statsPath;
    sopt.maxQueueDepth = maxQueueDepth;
    serve::ServeLoop loop(sopt);
    for (const TraceLine &line : lines) {
        if (g_signal)
            break;
        loop.submitLine(line.text, line.lineNo);
    }
    loop.drain();
    ChaosPass pass;
    pass.responses = loop.responses();
    for (const serve::ServeResponse &r : pass.responses)
        pass.modelEvals += r.stats.dse.modelEvals;
    pass.quarantined = loop.engine().cache().quarantined();
    pass.flushOk = loop.shutdown();
    return pass;
}

/**
 * Fault-injection replay: every builtin failpoint is armed in turn
 * against the same trace and the loop must degrade exactly as
 * documented (src/serve/README.md, "Failure modes & degradation") —
 * never crash, never lose the cache file to a failed save, never
 * answer a non-shed, non-faulted request with anything but ok.
 * Returns the process exit code.
 */
int
runChaos(const std::vector<TraceLine> &lines,
         const std::string &cachePath, int threads, bool keepCache,
         const std::string &statsPath)
{
    obs::Failpoints &fp = obs::Failpoints::instance();
    bool allOk = true;
    auto report = [&](const std::string &name, bool ok,
                      const std::string &detail) {
        std::printf("chaos %-20s %s%s%s\n", name.c_str(),
                    ok ? "ok" : "FAIL",
                    detail.empty() ? "" : " — ", detail.c_str());
        if (!ok)
            allOk = false;
    };
    auto okCount = [](const ChaosPass &p) {
        std::size_t n = 0;
        for (const serve::ServeResponse &r : p.responses)
            if (r.ok)
                ++n;
        return n;
    };
    auto allRespOk = [&](const ChaosPass &p) {
        return okCount(p) == p.responses.size() &&
               p.responses.size() == lines.size();
    };

    // Baseline: a clean cold pass populates the cache every later
    // warm scenario leans on (modelEvals == 0 is the warmness — and
    // therefore cache-survival — probe).
    std::remove(cachePath.c_str());
    {
        ChaosPass p =
            runChaosPass(lines, cachePath, threads, statsPath);
        report("baseline", allRespOk(p) && p.flushOk,
               "cold pass must succeed end to end");
        if (!allOk)
            return 1; // Nothing below is meaningful without it.
    }

    // Forced-corrupt load: the file is quarantined aside, the loop
    // cold-starts, answers everything, and re-saves a clean cache.
    {
        fp.arm("cache.load.corrupt", 1);
        ChaosPass p =
            runChaosPass(lines, cachePath, threads, statsPath);
        fp.disarmAll();
        const std::string aside = cachePath + ".corrupt";
        const bool asideExists =
            static_cast<bool>(std::ifstream(aside));
        report("cache.load.corrupt",
               allRespOk(p) && p.quarantined == 1 &&
                   p.modelEvals > 0 && p.flushOk && asideExists,
               "want quarantine + cold start + clean re-save");
        std::remove(aside.c_str());
    }

    // Every save-path seam: the flush fails loudly, the responses
    // are untouched, and — because the failed save must leave the
    // previous file intact — the NEXT scenario still runs warm.
    const char *saveSeams[] = {"cache.save.open", "cache.save.write",
                               "cache.save.fsync",
                               "cache.save.rename",
                               "cache.save.crash"};
    for (const char *seam : saveSeams) {
        if (g_signal)
            return 128 + g_signal;
        fp.arm(seam, 1);
        ChaosPass p =
            runChaosPass(lines, cachePath, threads, statsPath);
        fp.disarmAll();
        report(seam,
               allRespOk(p) && !p.flushOk && p.modelEvals == 0,
               "want warm pass + failed flush");
    }
    {
        // Recovery probe: after five failed saves the on-disk cache
        // is still the last good one (crash-safety), and saving
        // works again with nothing armed.
        ChaosPass p =
            runChaosPass(lines, cachePath, threads, statsPath);
        report("recovery", allRespOk(p) && p.flushOk &&
                               p.modelEvals == 0,
               "want warm pass + clean flush");
    }

    // Parse seam: the faulted line keeps its queue position as a
    // structured error; everything after it is answered normally.
    {
        fp.arm("serve.parse", 1);
        ChaosPass p =
            runChaosPass(lines, cachePath, threads, statsPath);
        fp.disarmAll();
        bool shaped = p.responses.size() == lines.size() &&
                      okCount(p) == p.responses.size() - 1 &&
                      !p.responses.empty() && !p.responses[0].ok &&
                      p.responses[0].error.find(
                          "injected parse fault") !=
                          std::string::npos;
        report("serve.parse", shaped,
               "want exactly one structured parse-fault response");
    }

    // Dispatch seam: the injected exception is contained to one
    // request as an internal-error response; the dispatcher (and
    // every request behind it) survives.
    {
        fp.arm("pool.dispatch", 1);
        ChaosPass p =
            runChaosPass(lines, cachePath, threads, statsPath);
        fp.disarmAll();
        bool shaped = p.responses.size() == lines.size() &&
                      okCount(p) == p.responses.size() - 1 &&
                      !p.responses.empty() && !p.responses[0].ok &&
                      p.responses[0].error.find("pool.dispatch") !=
                          std::string::npos &&
                      p.responses[0].error.rfind("internal error:",
                                                 0) == 0;
        report("pool.dispatch", shaped,
               "want one contained internal-error response");
    }

    // Overload: a depth-1 admission queue against a burst submit
    // must shed (with a positive retry hint) and still answer every
    // non-shed request correctly, in order.
    {
        ChaosPass p = runChaosPass(lines, cachePath, threads,
                                   statsPath, /*maxQueueDepth=*/1);
        std::size_t shed = 0;
        bool shapes = p.responses.size() == lines.size();
        for (const serve::ServeResponse &r : p.responses) {
            if (r.shed) {
                ++shed;
                shapes = shapes && !r.ok && r.retryAfterMs > 0;
            } else {
                shapes = shapes && r.ok;
            }
        }
        report("overload",
               shapes && shed > 0 && shed < p.responses.size(),
               "want >= 1 shed with retry hints, rest served (shed " +
                   std::to_string(shed) + "/" +
                   std::to_string(p.responses.size()) + ")");
    }

    // Expired deadline on a cold cache: the sweep trips immediately
    // and the response is a best-so-far schedule flagged degraded —
    // ok, never empty, never an error.
    {
        const std::string coldCache = cachePath + ".deadline";
        std::remove(coldCache.c_str());
        const std::vector<TraceLine> tiny = {
            {"{\"id\": \"chaos-deadline-tiny\", \"models\": "
             "[\"bert\"], \"k\": 8, \"deadline_ms\": 0.001}",
             1}};
        ChaosPass p =
            runChaosPass(tiny, coldCache, threads, statsPath);
        std::remove(coldCache.c_str());
        bool shaped = p.responses.size() == 1 &&
                      p.responses[0].ok &&
                      p.responses[0].degraded &&
                      !p.responses[0].schedules.empty();
        report("deadline.expired", shaped,
               "want ok + degraded best-so-far schedule");
    }

    // Generous deadline on the warm cache: must NOT degrade — the
    // deadline knob is free until it actually expires.
    {
        const std::vector<TraceLine> huge = {
            {"{\"id\": \"chaos-deadline-huge\", \"models\": "
             "[\"mobilenetv2\"], \"k\": 8, \"deadline_ms\": 1e9}",
             1}};
        ChaosPass p =
            runChaosPass(huge, cachePath, threads, statsPath);
        bool shaped = p.responses.size() == 1 &&
                      p.responses[0].ok &&
                      !p.responses[0].degraded &&
                      p.modelEvals == 0;
        report("deadline.generous", shaped,
               "want warm non-degraded response");
    }

    if (!keepCache)
        std::remove(cachePath.c_str());
    if (g_signal)
        return 128 + g_signal;
    std::printf("%s\n",
                allOk ? "chaos replay OK" : "chaos replay FAILED");
    return allOk ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string tracePath = "examples/serve_trace.jsonl";
    bool traceExplicit = false;
    std::string cachePath = "lego_serve.cache";
    int threads = 1;
    bool keepCache = false, printTrace = false, doCalibrate = false;
    bool doChaos = false;
    std::string traceOut;
    std::string sharedCachePath;
    std::string responsesOut;
    ObsPaths obsPaths;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            tracePath = argv[++i];
            traceExplicit = true;
        } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
            cachePath = argv[++i];
        } else if (!std::strcmp(argv[i], "--threads") &&
                   i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--keep-cache")) {
            keepCache = true;
        } else if (!std::strcmp(argv[i], "--print-trace")) {
            printTrace = true;
        } else if (!std::strcmp(argv[i], "--calibrate")) {
            doCalibrate = true;
        } else if (!std::strcmp(argv[i], "--chaos")) {
            doChaos = true;
        } else if (!std::strcmp(argv[i], "--shared-cache") &&
                   i + 1 < argc) {
            sharedCachePath = argv[++i];
        } else if (!std::strcmp(argv[i], "--responses-out") &&
                   i + 1 < argc) {
            responsesOut = argv[++i];
        } else if (!std::strcmp(argv[i], "--trace-out") &&
                   i + 1 < argc) {
            traceOut = argv[++i];
        } else if (!std::strcmp(argv[i], "--stats-out") &&
                   i + 1 < argc) {
            obsPaths.stats = argv[++i];
        } else if (!std::strcmp(argv[i], "--access-log") &&
                   i + 1 < argc) {
            obsPaths.accessLog = argv[++i];
        } else {
            std::printf("unknown flag %s\n", argv[i]);
            return 2;
        }
    }
    std::printf("%s\n", obs::buildInfo().oneLine().c_str());
    if (!traceOut.empty())
        obs::Tracer::setEnabled(true);
    // Flag-based graceful shutdown: the handler sets g_signal, the
    // main thread notices between trace lines / passes and exits
    // through the normal drain + flush path with 128 + signo.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (printTrace) {
        for (const serve::ServeRequest &req : serve::demoTrace())
            std::printf("%s\n", serve::formatRequest(req).c_str());
        return 0;
    }

    // Requests are submitted line by line (with line numbers, so
    // rejections cite their source); the parsed form is only needed
    // for --calibrate. A missing default trace falls back to the
    // built-in demo trace rendered through formatRequest.
    std::vector<TraceLine> lines;
    std::vector<serve::ServeRequest> trace;
    std::string err;
    if (loadTraceLines(tracePath, &lines, &err)) {
        std::printf("replaying %s (%zu requests)\n",
                    tracePath.c_str(), lines.size());
        if (doCalibrate &&
            !serve::parseTraceFile(tracePath, &trace, &err)) {
            std::printf("error: %s\n", err.c_str());
            return 2;
        }
    } else if (traceExplicit) {
        std::printf("error: %s\n", err.c_str());
        return 2;
    } else {
        trace = serve::demoTrace();
        for (std::size_t i = 0; i < trace.size(); ++i)
            lines.push_back(
                {serve::formatRequest(trace[i]), i + 1});
        std::printf("default trace missing (%s); replaying the "
                    "built-in demo trace (%zu requests)\n",
                    err.c_str(), trace.size());
    }

    if (doCalibrate) {
        calibrate(trace);
        return 0;
    }
    if (doChaos)
        return runChaos(lines, cachePath, threads, keepCache,
                        obsPaths.stats);

    if (!sharedCachePath.empty()) {
        // Reader replay: one pass, warmth only through the mapped
        // snapshot. The gates mirror the two-pass warm gates, plus
        // the attribution proof that the mmap tier actually served.
        std::printf("— reader pass (shared cache %s) —\n",
                    sharedCachePath.c_str());
        PassNumbers pass = runPass("read", lines, "", threads,
                                   obsPaths, sharedCachePath);
        if (g_signal)
            return 128 + g_signal;
        bool ok = true;
        for (const serve::ServeResponse &r : pass.responses)
            if (!r.ok) {
                std::printf("FAIL: request %llu (%s): %s\n",
                            (unsigned long long)r.seq, r.id.c_str(),
                            r.error.c_str());
                ok = false;
            }
        if (pass.modelEvals != 0) {
            std::printf("FAIL: reader ran %llu model evaluations "
                        "(want 0 — every answer from the shared "
                        "snapshot)\n",
                        (unsigned long long)pass.modelEvals);
            ok = false;
        }
        if (pass.frontierHitRate() < 0.90) {
            std::printf("FAIL: reader frontier hit rate %.1f%% < "
                        "90%%\n",
                        100.0 * pass.frontierHitRate());
            ok = false;
        }
        if (pass.sharedFrontHits == 0) {
            std::printf("FAIL: no frontier hit was served from the "
                        "mapped tier\n");
            ok = false;
        }
        if (!responsesOut.empty() &&
            !dumpResponses(responsesOut, pass.responses)) {
            std::printf("FAIL: cannot write responses to %s\n",
                        responsesOut.c_str());
            ok = false;
        }
        std::printf("%s\n", ok ? "shared-cache reader OK"
                               : "shared-cache reader FAILED");
        return ok ? 0 : 1;
    }

    // Pass 1 must be genuinely cold: a stale cache file would turn
    // the cold pass into a warm one and hide regressions.
    std::remove(cachePath.c_str());
    std::printf("— cold pass —\n");
    PassNumbers cold =
        runPass("cold", lines, cachePath, threads, obsPaths);
    if (g_signal) {
        std::printf("interrupted by signal %d; cache flushed, "
                    "exiting\n",
                    int(g_signal));
        return 128 + g_signal;
    }
    std::printf("— warm pass (restart, cache %s) —\n",
                cachePath.c_str());
    PassNumbers warm =
        runPass("warm", lines, cachePath, threads, obsPaths);
    if (!keepCache)
        std::remove(cachePath.c_str());
    if (g_signal) {
        std::printf("interrupted by signal %d; cache flushed, "
                    "exiting\n",
                    int(g_signal));
        return 128 + g_signal;
    }

    if (!traceOut.empty()) {
        if (obs::Tracer::instance().writeJson(
                traceOut,
                "{\"build\": " + obs::buildInfo().toJson() + "}"))
            std::printf("trace written to %s (%llu events, %llu "
                        "dropped)\n",
                        traceOut.c_str(),
                        (unsigned long long)
                            obs::Tracer::instance().recorded(),
                        (unsigned long long)
                            obs::Tracer::instance().dropped());
        else
            std::printf("warning: cannot write trace to %s\n",
                        traceOut.c_str());
    }

    bool ok = true;
    for (const PassNumbers *pass : {&cold, &warm})
        for (const serve::ServeResponse &r : pass->responses)
            if (!r.ok) {
                std::printf("FAIL: request %llu (%s): %s\n",
                            (unsigned long long)r.seq, r.id.c_str(),
                            r.error.c_str());
                ok = false;
            }
    if (cold.responses.size() != warm.responses.size()) {
        std::printf("FAIL: response count mismatch\n");
        ok = false;
    } else {
        for (std::size_t i = 0; i < cold.responses.size(); ++i)
            if (!serve::sameResponse(cold.responses[i],
                                     warm.responses[i])) {
                std::printf("FAIL: warm response %zu diverged from "
                            "cold\n",
                            i);
                ok = false;
            }
    }
    if (warm.modelEvals != 0) {
        std::printf("FAIL: warm pass ran %llu model evaluations "
                    "(want 0)\n",
                    (unsigned long long)warm.modelEvals);
        ok = false;
    }
    if (warm.frontHits + warm.frontMisses == 0) {
        std::printf("FAIL: warm pass made no frontier lookups — "
                    "trace has no K > 1 requests?\n");
        ok = false;
    } else if (warm.frontierHitRate() < 0.90) {
        std::printf("FAIL: warm frontier hit rate %.1f%% < 90%%\n",
                    100.0 * warm.frontierHitRate());
        ok = false;
    }
    if (!responsesOut.empty() &&
        !dumpResponses(responsesOut, warm.responses)) {
        std::printf("FAIL: cannot write responses to %s\n",
                    responsesOut.c_str());
        ok = false;
    }
    std::printf("%s\n", ok ? "serve replay OK" : "serve replay FAILED");
    return ok ? 0 : 1;
}
