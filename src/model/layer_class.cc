#include "model/layer_class.hh"

#include <unordered_map>

namespace lego
{

std::array<std::uint64_t, LayerSignature::kWords>
LayerSignature::words() const
{
    return {
        std::uint64_t(kind),   std::uint64_t(n),
        std::uint64_t(ic),     std::uint64_t(oc),
        std::uint64_t(oh),     std::uint64_t(ow),
        std::uint64_t(kh),     std::uint64_t(kw),
        std::uint64_t(stride), std::uint64_t(m),
        std::uint64_t(k),      std::uint64_t(nOut),
        std::uint64_t(batchAmortized),
        std::uint64_t(ppu),    std::uint64_t(elems),
    };
}

std::uint64_t
LayerSignature::hash() const
{
    std::uint64_t h = kFnv1aOffset;
    for (std::uint64_t w : words())
        h = fnv1aWord(h, w);
    return h;
}

LayerSignature
layerSignature(const Layer &l)
{
    LayerSignature s;
    s.kind = l.kind;
    s.n = l.n;
    s.ic = l.ic;
    s.oc = l.oc;
    s.oh = l.oh;
    s.ow = l.ow;
    s.kh = l.kh;
    s.kw = l.kw;
    s.stride = l.stride;
    s.m = l.m;
    s.k = l.k;
    s.nOut = l.nOut;
    s.batchAmortized = l.batchAmortized;
    s.ppu = l.ppu;
    s.elems = l.elems;
    return s;
}

std::vector<LayerClass>
groupLayerClasses(const Model &m)
{
    // The zoo grouping over a one-model zoo IS the per-model
    // grouping (model-major scan of a single model = layer order),
    // so there is exactly one class-table construction to keep
    // correct.
    std::vector<LayerClass> classes;
    for (const ZooLayerClass &zc : groupLayerClassesZoo({&m})) {
        LayerClass cls;
        cls.representative = zc.representative.layer;
        cls.members.reserve(zc.members.size());
        for (const ZooLayerRef &ref : zc.members)
            cls.members.push_back(ref.layer);
        classes.push_back(std::move(cls));
    }
    return classes;
}

std::vector<ZooLayerClass>
groupLayerClassesZoo(const std::vector<const Model *> &zoo)
{
    std::vector<ZooLayerClass> classes;
    std::unordered_map<LayerSignature, std::size_t, LayerSignatureHash>
        index;
    for (std::size_t mi = 0; mi < zoo.size(); ++mi) {
        for (std::size_t li = 0; li < zoo[mi]->layers.size(); ++li) {
            LayerSignature sig = layerSignature(zoo[mi]->layers[li]);
            ZooLayerRef ref{mi, li};
            auto it = index.find(sig);
            if (it == index.end()) {
                index.emplace(sig, classes.size());
                ZooLayerClass cls;
                cls.representative = ref;
                cls.members.push_back(ref);
                cls.distinctModels = 1;
                classes.push_back(std::move(cls));
            } else {
                ZooLayerClass &cls = classes[it->second];
                if (cls.members.back().model != mi)
                    ++cls.distinctModels;
                cls.members.push_back(ref);
            }
        }
    }
    return classes;
}

} // namespace lego
