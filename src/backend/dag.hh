/**
 * @file
 * Detailed Architecture Graph (DAG) — the primitive-level IR of the
 * LEGO back end (paper Section V, Fig. 7).
 *
 * The DAG opens the FU black boxes of the ADG: nodes are primitives,
 * edges carry bit-widths, per-config activity, programmable delays
 * (FIFO depths) and the pipeline registers inserted by delay
 * matching. All back-end optimization passes transform this graph,
 * and both the Verilog emitter and the cycle-accurate interpreter
 * consume it.
 */

#ifndef LEGO_BACKEND_DAG_HH
#define LEGO_BACKEND_DAG_HH

#include <string>
#include <vector>

#include "backend/primitives.hh"
#include "core/matrix.hh"

namespace lego
{

/** Affine address expression: addr = coefT . t_digits + bias. */
struct AffineAddr
{
    IntVec coefT;
    Int bias = 0;
    bool valid = false; //!< Whether this config uses the generator.
};

/** One primitive instance. */
struct DagNode
{
    PrimOp op = PrimOp::Const;
    std::string name;   //!< Unique, stable; used in Verilog.
    int fu = -1;        //!< Owning FU (spatial position), -1 = global.
    int width = 16;     //!< Output bit-width (bit-width inference).
    Int latency = 0;    //!< Internal latency L_v.

    // --- payload (op-specific) -------------------------------------
    Int constValue = 0;            //!< Const.
    std::vector<IntVec> radix;     //!< Counter: per-config loop radix.
    std::vector<AffineAddr> addr;  //!< AddrGen: per-config expression.
    std::vector<int> muxSel;       //!< Mux: per-config pin; -2 dynamic.
    int memPort = -1;              //!< Mem*: operand port id (-1=out).
    bool accumulate = false;       //!< MemWrite: read-modify-write.
    bool maxAccum = false;         //!< MemWrite: max instead of add.
    int reducePins = 0;            //!< Reduce: physical pin count.
    /** Reduce: per-config, per physical pin, source edge or -1. */
    std::vector<std::vector<int>> pinMap;
    /** Mux dynamic mode: valid-select pin index (-1 = none). */
    int selPin = -1;
    /** Mux dynamic mode: per-config (pin when valid, pin when not). */
    std::vector<std::pair<int, int>> dynPins;
    /** Valid: per-config digit-wise FIFO offset (empty = always 1). */
    std::vector<IntVec> validDt;
    bool dead = false; //!< Removed by a transformation pass.
};

/** One wire/connection between primitives. */
struct DagEdge
{
    int from = -1;
    int to = -1;
    int toPin = 0;    //!< Input pin index on the destination.
    int width = 16;
    Int regs = 0;     //!< Pipeline registers (EL of Eq. 10).
    /** Per-config programmed delay (FIFO depth); empty = all zero. */
    std::vector<Int> cfgDelay;
    /** Per-config liveness; empty = active everywhere. */
    std::vector<bool> active;
    bool gated = false; //!< Clock-gated when inactive (power pass).
    bool dead = false;  //!< Removed by a transformation pass.

    Int delayFor(int cfg) const
    {
        Int d = regs;
        if (!cfgDelay.empty())
            d += cfgDelay.at(size_t(cfg));
        return d;
    }

    bool activeFor(int cfg) const
    {
        return active.empty() || active.at(size_t(cfg));
    }
};

/** The graph. */
class Dag
{
  public:
    explicit Dag(int num_configs) : numConfigs_(num_configs) {}

    int numConfigs() const { return numConfigs_; }

    int addNode(DagNode n);
    int addEdge(DagEdge e);

    DagNode &node(int id) { return nodes_.at(size_t(id)); }
    const DagNode &node(int id) const { return nodes_.at(size_t(id)); }
    DagEdge &edge(int id) { return edges_.at(size_t(id)); }
    const DagEdge &edge(int id) const { return edges_.at(size_t(id)); }

    int numNodes() const { return int(nodes_.size()); }
    int numEdges() const { return int(edges_.size()); }

    const std::vector<int> &inEdges(int node) const;
    const std::vector<int> &outEdges(int node) const;

    /** Input edge feeding pin `pin` of `node`, or -1. */
    int inEdgeAt(int node, int pin) const;

    /** Topological order over all edges; panics on a cycle. */
    std::vector<int> topoOrder() const;

    /**
     * Topological order over the subgraph active in one config.
     * Fused designs may pair opposite-direction edges that are never
     * active together; each config's subgraph must still be acyclic
     * ("only one path is activated at every cycle ... forming an
     * acyclic forest", Section II).
     */
    std::vector<int> topoOrder(int cfg) const;

    /** Structural sanity checks (unique pins, per-config acyclicity). */
    void validate() const;

    /** Total register bits: edge regs * width (the LP objective). */
    Int registerBits() const;

    /** Nodes matching an op kind (dead nodes excluded). */
    std::vector<int> nodesOf(PrimOp op) const;

    /** Mark an edge dead (skipped by every consumer of the graph). */
    void killEdge(int id);

    /** Mark a node and all its incident edges dead. */
    void killNode(int id);

    /** Move an edge's source to another node. */
    void retargetEdgeSource(int id, int new_from);

    /** Live (non-dead) node / edge counts. */
    int liveNodes() const;
    int liveEdges() const;

  private:
    int numConfigs_;
    std::vector<DagNode> nodes_;
    std::vector<DagEdge> edges_;
    std::vector<std::vector<int>> in_, out_;
};

} // namespace lego

#endif // LEGO_BACKEND_DAG_HH
