#include "sim/noc.hh"

#include <algorithm>
#include <cmath>

namespace lego
{

NocCost
nocCost(const NocSpec &s)
{
    NocCost c;
    const int n = std::max(1, s.endpointsX * s.endpointsY);
    const double bits = double(s.linkBits);

    if (s.kind == NocKind::Butterfly) {
        // log2(n) stages of n/2 2x2 switches.
        int stages = 1;
        while ((1 << stages) < n)
            stages++;
        const double switches = std::max(1.0, n / 2.0) * stages;
        c.areaUm2 = switches * bits * 1.8;
        c.powerUw = switches * bits * 0.35;
        c.avgLatencyCycles = stages + 1;
        c.bisectionGBs = double(n) / 2.0 * bits / 8.0 * s.freqGhz;
        c.energyPerBytePj = 0.25 * stages;
    } else {
        // Wormhole mesh: one 5-port router per endpoint.
        c.areaUm2 = double(n) * bits * 6.0;
        c.powerUw = double(n) * bits * 1.1;
        c.avgLatencyCycles =
            2.0 * (s.endpointsX + s.endpointsY) / 3.0 * 3.0;
        c.bisectionGBs =
            double(std::min(s.endpointsX, s.endpointsY)) * bits / 8.0 *
            s.freqGhz;
        c.energyPerBytePj =
            0.4 * (s.endpointsX + s.endpointsY) / 2.0;
    }
    return c;
}

int
meshHops(int x0, int y0, int x1, int y1)
{
    // Dimension-ordered (X then Y) routing: deadlock-free.
    return std::abs(x1 - x0) + std::abs(y1 - y0);
}

Int
nocTransferCycles(const NocSpec &s, Int bytes, int hops)
{
    const Int flit_bytes = std::max<Int>(1, s.linkBits / 8);
    Int flits = ceilDiv(bytes, flit_bytes);
    // Wormhole: head latency = hops * (2-cycle router + 1-cycle
    // link), body pipelined behind it.
    return Int(hops) * 3 + flits;
}

NocPartitionTable::NocPartitionTable(const NocSpec &spec, int totalCols)
    : spec_(spec), totalCols_(std::max(1, totalCols))
{
    const int total =
        std::max(1, spec_.endpointsX * spec_.endpointsY);
    byCols_.resize(size_t(totalCols_) + 1);
    for (int c = 1; c <= totalCols_; c++) {
        // A c-column slice owns a proportional share of the fabric's
        // endpoints (at least 2 so a bisection exists).
        NocSpec sub = spec_;
        sub.endpointsX = std::max(
            2, int(Int(total) * c / totalCols_));
        sub.endpointsY = 1;
        byCols_[size_t(c)] = nocCost(sub);
    }
}

const NocCost &
NocPartitionTable::at(int sliceCols) const
{
    const int c = std::min(std::max(1, sliceCols), totalCols_);
    return byCols_[size_t(c)];
}

double
NocPartitionTable::bisectionGBs(int sliceCols) const
{
    return at(sliceCols).bisectionGBs;
}

double
NocPartitionTable::energyPerBytePj(int sliceCols) const
{
    return at(sliceCols).energyPerBytePj;
}

Int
NocPartitionTable::transferCycles(Int bytes) const
{
    return nocTransferCycles(spec_, bytes, 1);
}

} // namespace lego
