/**
 * @file
 * Hardware primitive library for the Detailed Architecture Graph
 * (paper Section V). DAG nodes are primitives — counters, address
 * generators, arithmetic, muxes, FIFOs, memory ports — with internal
 * latencies; DAG edges carry bit-widths and pipeline registers.
 */

#ifndef LEGO_BACKEND_PRIMITIVES_HH
#define LEGO_BACKEND_PRIMITIVES_HH

#include <string>

#include "core/types.hh"

namespace lego
{

/** Primitive operation kinds. */
enum class PrimOp
{
    Const,    //!< Constant value.
    Counter,  //!< Mixed-radix timestamp counter (the control unit).
    Tap,      //!< Control distribution point (bus repeater).
    AddrGen,  //!< Affine map local-time -> memory address (+ valid).
    Valid,    //!< Delay-window validity comparator (FIFO data valid).
    MemRead,  //!< L1 read port: addr -> data.
    MemWrite, //!< L1 write port: addr, data (+accumulate), gated.
    Mul,      //!< Multiplier.
    Add,      //!< Adder.
    Shl,      //!< Barrel shifter (BitFusion-style FUs).
    Max,      //!< Max unit (pooling FUs).
    Mux,      //!< Config-selected multiplexer.
    Reduce,   //!< Balanced reduction tree (post-extraction).
    Fifo,     //!< Programmable-depth delay line.
    Sink,     //!< Architectural sink marker (debug/observability).
};

/** Printable name, also used as the Verilog module base name. */
std::string primOpName(PrimOp op);

/**
 * Internal latency of a primitive in cycles (the L_v of Eq. 10).
 * Multipliers and memory reads are pipelined by one stage; everything
 * else is combinational within a cycle at the target frequency.
 */
Int primLatency(PrimOp op);

/** True when the primitive holds architectural state. */
bool primIsSequential(PrimOp op);

} // namespace lego

#endif // LEGO_BACKEND_PRIMITIVES_HH
