#include "sim/arch_config.hh"

#include "sim/ppu.hh"

namespace lego
{

std::string
dataflowTagName(DataflowTag t)
{
    switch (t) {
      case DataflowTag::MN:
        return "M-N";
      case DataflowTag::ICOC:
        return "IC-OC";
      case DataflowTag::OHOW:
        return "OH-OW";
      case DataflowTag::KHOH:
        return "KH-OH";
    }
    panic("dataflowTagName: bad tag");
}

ChipCost
archCost(const HardwareConfig &hw)
{
    // Constants calibrated to the paper's Fig. 12(a) anchors for the
    // 256-FU LEGO-MNICOC instance: 1.76 mm^2 / 285 mW split as
    // FU 7%/57%, buffers 86%/12%, NoC 5%/26%, PPUs 2%/5%.
    ChipCost c;
    const double fus = hw.totalFus();
    const double w = hw.dataBits;
    const double wf = w / 8.0;

    // Per-FU silicon: 8-bit MAC + 24-bit accumulate path, operand
    // and pipeline registers (~100 bits incl. FIFO share), muxes,
    // and the shared control slice; 1.2x wiring overhead.
    // Fused dataflows add mux/datapath overhead; the heuristic
    // planner (Section IV-C) keeps it to ~18% per extra dataflow,
    // the naive merge pays ~2.2x that (Table V).
    double per_df = hw.naiveFusion ? 0.40 : 0.18;
    double mux_factor =
        1.0 + per_df * double(hw.dataflows.size() - 1);
    c.fuArrayAreaUm2 = fus * 480.0 * wf * mux_factor;
    c.fuArrayPowerUw =
        fus * 530.0 * wf * mux_factor * hw.freqGhz;

    // Buffers: banked L1 (one bank per array row+column feed) plus
    // the data-distribution switches folded into periphery.
    int banks = std::max(4, hw.rows + hw.cols);
    SramCost sc = sramArrayCost(hw.l1Kb * 1024, banks, 64);
    const double clusters = double(hw.l2X * hw.l2Y);
    c.buffersAreaUm2 = sc.areaUm2 * 1.28 * clusters;
    // ~50% port duty (read+write) plus leakage.
    c.buffersPowerUw =
        (sc.leakageUw +
         0.55 * double(banks) * sc.readEnergyPj * hw.freqGhz * 1e3) *
        clusters;
    c.sramReadPj = sc.readEnergyPj;

    // NoCs: L1 butterfly inside the cluster, wormhole mesh above.
    int stages = 1;
    while ((1 << stages) < banks)
        stages++;
    double switch_bits = double(banks) / 2.0 * stages * 128.0;
    c.nocAreaUm2 = switch_bits * 8.6 * clusters;
    c.nocPowerUw = switch_bits * 7.2 * hw.freqGhz * clusters;
    if (hw.l2X * hw.l2Y > 1) {
        NocSpec l2{NocKind::WormholeMesh, hw.l2X, hw.l2Y, 128,
                   hw.freqGhz};
        NocCost l2c = nocCost(l2);
        c.nocAreaUm2 += l2c.areaUm2;
        c.nocPowerUw += l2c.powerUw;
    }

    c.ppusAreaUm2 = double(hw.numPpus) * ppuAreaUm2();
    c.ppusPowerUw = double(hw.numPpus) * ppuPowerUw() * hw.freqGhz;
    return c;
}

} // namespace lego
