/**
 * @file
 * The paper's headline scenario: ONE hardware design (LEGO-MNICOC)
 * serving very different networks. The mapper picks per-layer spatial
 * dataflows; depthwise layers switch away from IC-OC exactly as the
 * paper describes for MobileNetV2. The networks are mapped through
 * the zoo-level class table, so shape-identical layers shared
 * BETWEEN the models (e.g. matching projection heads) are searched
 * once for the whole zoo.
 */

#include <cstdio>

#include "lego.hh"

using namespace lego;

int
main()
{
    HardwareConfig hw;
    hw.name = "LEGO-MNICOC";
    hw.rows = hw.cols = 16;
    hw.l1Kb = 256;
    hw.dram.bandwidthGBs = 16.0;
    hw.dataflows = {DataflowTag::MN, DataflowTag::ICOC};

    Model mbv2 = makeMobileNetV2();
    Model effnet = makeEfficientNetV2();
    Model bert = makeBert(16);
    std::vector<const Model *> zoo = {&mbv2, &effnet, &bert};

    dse::DseEngine engine;
    std::vector<ScheduleResult> results = engine.mapZoo(hw, zoo);
    for (std::size_t mi = 0; mi < zoo.size(); ++mi) {
        const Model &m = *zoo[mi];
        const ScheduleResult &r = results[mi];
        std::printf("=== %s on %s ===\n", m.name.c_str(),
                    hw.name.c_str());
        std::printf("  %lld cycles, %.0f GOP/s, %.1f MB DRAM\n",
                    (long long)r.summary.totalCycles,
                    r.summary.gops(hw.freqGhz),
                    double(r.summary.dramBytes) / 1e6);
        int shown = 0;
        for (size_t i = 0; i < m.layers.size() && shown < 6; i++) {
            const Layer &l = m.layers[i];
            if (!l.isTensorOp())
                continue;
            std::printf("  %-14s -> %-6s tiles(%lld,%lld,%lld) "
                        "%s\n", l.name.c_str(),
                        dataflowTagName(
                            r.perLayer[i].mapping.dataflow)
                            .c_str(),
                        (long long)r.perLayer[i].mapping.tm,
                        (long long)r.perLayer[i].mapping.tn,
                        (long long)r.perLayer[i].mapping.tk,
                        r.perLayer[i].result.memoryBound
                            ? "(memory-bound)"
                            : "");
            shown++;
        }
    }
    dse::EvalCounters c = engine.evaluator().counters();
    std::printf("zoo class table: %llu mapping searches for %zu "
                "layer instances (%llu deduped, %llu shared "
                "across models)\n",
                (unsigned long long)c.searches,
                mbv2.layers.size() + effnet.layers.size() +
                    bert.layers.size(),
                (unsigned long long)c.layersDeduped,
                (unsigned long long)c.crossModelDeduped);
    return 0;
}
