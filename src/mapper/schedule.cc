#include "mapper/schedule.hh"

namespace lego
{

ScheduleResult
scheduleModel(const HardwareConfig &hw, const Model &m)
{
    ScheduleResult out;
    for (const Layer &l : m.layers) {
        MappedLayer ml = mapLayer(hw, l);
        accumulate(out.summary, ml.result, l.isTensorOp(), l.repeat);
        out.perLayer.push_back(std::move(ml));
    }
    return out;
}

} // namespace lego
