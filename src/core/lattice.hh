/**
 * @file
 * Bounded integer lattice solver used by delay-interconnection
 * analysis (Section IV-A, Eq. 7 of the paper).
 *
 * Given the linear system A * dt = rhs over the integers, the solution
 * set is an affine lattice (particular solution + integer combinations
 * of the nullspace basis). The delay analysis needs the solution that
 * minimizes the *scalar* timestamp delay (Eq. 3 mixed-radix weighting)
 * subject to the delay being non-negative and each component staying
 * inside the loop-extent window.
 */

#ifndef LEGO_CORE_LATTICE_HH
#define LEGO_CORE_LATTICE_HH

#include <optional>

#include "core/matrix.hh"

namespace lego
{

/** A solution of the bounded lattice minimization. */
struct LatticeSolution
{
    /** The integer solution vector dt. */
    IntVec dt;
    /** Scalar mixed-radix value of dt (the FIFO depth in cycles). */
    Int scalar;
};

/**
 * Parameters of the minimization. `radix` holds the loop extents R_T
 * used both as the mixed-radix weights of the scalar timestamp and as
 * component bounds |dt_i| < radix[i].
 */
struct LatticeProblem
{
    IntMat a;          //!< Coefficient matrix (D x T).
    IntVec rhs;        //!< Right-hand side (D).
    IntVec radix;      //!< Loop extents R_T (T); weights per Eq. 3.
    Int minScalar = 0; //!< Require scalar >= minScalar.
    /** Search half-width for nullspace coefficients. */
    Int searchBound = 3;
};

/** Mixed-radix scalar value of dt given the loop extents (Eq. 3). */
Int mixedRadixScalar(const IntVec &dt, const IntVec &radix);

/** Inverse of mixedRadixScalar for non-negative scalars. */
IntVec mixedRadixDigits(Int scalar, const IntVec &radix);

/**
 * Solve the bounded lattice minimization.
 *
 * Finds integer dt with a*dt = rhs, |dt_i| < radix[i], and
 * mixedRadixScalar(dt) >= minScalar, minimizing the scalar. Returns
 * std::nullopt when no such solution exists within the search bound
 * on nullspace coefficients.
 *
 * The search enumerates coefficient vectors on the integer nullspace
 * basis inside [-searchBound, searchBound]^k around the particular
 * solution; for the affine relations arising from loop nests this
 * window always contains the optimum (nullspace directions correspond
 * to loop dimensions the tensor does not depend on).
 */
std::optional<LatticeSolution> solveBoundedLattice(const LatticeProblem &p);

} // namespace lego

#endif // LEGO_CORE_LATTICE_HH
