/**
 * @file
 * Back-end pass manager: runs the paper's transformation pipeline on
 * a lowered design and reports per-stage costs, which the Fig. 10 /
 * 13 / 14 benches consume directly.
 *
 * Pipeline: bit-width inference -> reduction-tree extraction ->
 * broadcast rewiring (stages 1-2) -> delay matching (stage 3) ->
 * pin reusing -> power gating -> final bit-width refresh.
 *
 * The Fig. 10 baseline is "delay matching only" (mandatory for
 * timing); every other pass can be toggled for ablations.
 */

#ifndef LEGO_BACKEND_PASSES_HH
#define LEGO_BACKEND_PASSES_HH

#include "backend/bitwidth.hh"
#include "backend/codegen.hh"
#include "backend/cost.hh"
#include "backend/delay_match.hh"
#include "backend/pin_reuse.hh"
#include "backend/power_gate.hh"
#include "backend/reduce_tree.hh"
#include "backend/rewire.hh"

namespace lego
{

/** Pass toggles. */
struct BackendOptions
{
    bool reduceTrees = true;
    bool rewireBroadcast = true;
    bool pinReuse = true;
    bool powerGating = true;
};

/** Per-stage report for the optimization-breakdown figures. */
struct BackendReport
{
    DagCost baseline;  //!< Delay matching only.
    DagCost afterReduce;
    DagCost afterRewire;
    DagCost afterPinReuse;
    DagCost final;     //!< Everything incl. power gating.

    ReduceTreeStats reduceStats;
    RewireStats rewireStats;
    PinReuseStats pinStats;
    PowerGateStats gateStats;
    DelayMatchStats matchStats;
    BitwidthStats widthStats;

    double areaSaving() const
    {
        return baseline.totalArea() / std::max(1.0, final.totalArea());
    }
    double powerSaving() const
    {
        return baseline.totalPower() /
               std::max(1.0, final.totalPower());
    }
};

/**
 * Run the full back end on a freshly lowered design. Mutates the DAG
 * in place; on return it is optimized and delay-matched.
 */
BackendReport runBackend(CodegenResult &gen,
                         const BackendOptions &opt = {});

} // namespace lego

#endif // LEGO_BACKEND_PASSES_HH
