#include "backend/dag.hh"

#include <algorithm>

namespace lego
{

int
Dag::addNode(DagNode n)
{
    n.latency = primLatency(n.op);
    nodes_.push_back(std::move(n));
    in_.emplace_back();
    out_.emplace_back();
    return int(nodes_.size()) - 1;
}

int
Dag::addEdge(DagEdge e)
{
    if (e.from < 0 || e.from >= numNodes() || e.to < 0 ||
        e.to >= numNodes())
        panic("Dag::addEdge: endpoint out of range");
    edges_.push_back(e);
    int id = int(edges_.size()) - 1;
    out_[size_t(e.from)].push_back(id);
    in_[size_t(e.to)].push_back(id);
    return id;
}

const std::vector<int> &
Dag::inEdges(int node) const
{
    return in_.at(size_t(node));
}

const std::vector<int> &
Dag::outEdges(int node) const
{
    return out_.at(size_t(node));
}

int
Dag::inEdgeAt(int node, int pin) const
{
    for (int e : in_.at(size_t(node)))
        if (edges_[size_t(e)].toPin == pin)
            return e;
    return -1;
}

namespace
{

std::vector<int>
topoImpl(int num_nodes, const std::vector<DagEdge> &edges,
         const std::vector<std::vector<int>> &out, int cfg)
{
    std::vector<int> indeg(size_t(num_nodes), 0);
    auto live = [&](const DagEdge &e) {
        if (e.dead)
            return false;
        return cfg < 0 || e.activeFor(cfg);
    };
    for (const DagEdge &e : edges)
        if (live(e))
            indeg[size_t(e.to)]++;
    std::vector<int> queue;
    for (int v = 0; v < num_nodes; v++)
        if (indeg[size_t(v)] == 0)
            queue.push_back(v);
    std::vector<int> order;
    for (size_t qi = 0; qi < queue.size(); qi++) {
        int u = queue[qi];
        order.push_back(u);
        for (int e : out[size_t(u)]) {
            if (!live(edges[size_t(e)]))
                continue;
            if (--indeg[size_t(edges[size_t(e)].to)] == 0)
                queue.push_back(edges[size_t(e)].to);
        }
    }
    if (int(order.size()) != num_nodes)
        panic("Dag::topoOrder: cycle detected" +
              std::string(cfg >= 0 ? " in config " + std::to_string(cfg)
                                   : ""));
    return order;
}

} // namespace

std::vector<int>
Dag::topoOrder() const
{
    return topoImpl(numNodes(), edges_, out_, -1);
}

std::vector<int>
Dag::topoOrder(int cfg) const
{
    return topoImpl(numNodes(), edges_, out_, cfg);
}

void
Dag::validate() const
{
    // Unique pin per (node, pin).
    for (int v = 0; v < numNodes(); v++) {
        if (nodes_[size_t(v)].dead)
            continue;
        std::vector<int> pins;
        for (int e : in_[size_t(v)]) {
            if (edges_[size_t(e)].dead)
                continue;
            pins.push_back(edges_[size_t(e)].toPin);
        }
        std::sort(pins.begin(), pins.end());
        if (std::adjacent_find(pins.begin(), pins.end()) != pins.end())
            panic("Dag::validate: duplicate input pin on node " +
                  nodes_[size_t(v)].name);
    }
    for (const DagEdge &e : edges_) {
        if (e.dead)
            continue;
        if (e.regs < 0)
            panic("Dag::validate: negative edge registers");
        for (Int d : e.cfgDelay)
            if (d < 0)
                panic("Dag::validate: negative FIFO depth");
    }
    for (int c = 0; c < numConfigs_; c++)
        topoOrder(c); // Panics on per-config cycles.
}

Int
Dag::registerBits() const
{
    Int bits = 0;
    for (const DagEdge &e : edges_) {
        if (e.dead)
            continue;
        // FIFO storage counts with its worst-case programmed depth.
        Int depth = e.regs;
        for (Int d : e.cfgDelay)
            depth = std::max(depth, e.regs + d);
        bits += depth * e.width;
    }
    return bits;
}

void
Dag::killEdge(int id)
{
    edges_.at(size_t(id)).dead = true;
}

void
Dag::killNode(int id)
{
    nodes_.at(size_t(id)).dead = true;
    for (int e : in_.at(size_t(id)))
        edges_[size_t(e)].dead = true;
    for (int e : out_.at(size_t(id)))
        edges_[size_t(e)].dead = true;
}

void
Dag::retargetEdgeSource(int id, int new_from)
{
    DagEdge &e = edges_.at(size_t(id));
    auto &old_out = out_.at(size_t(e.from));
    old_out.erase(std::remove(old_out.begin(), old_out.end(), id),
                  old_out.end());
    e.from = new_from;
    out_.at(size_t(new_from)).push_back(id);
}

int
Dag::liveNodes() const
{
    int n = 0;
    for (const DagNode &v : nodes_)
        n += v.dead ? 0 : 1;
    return n;
}

int
Dag::liveEdges() const
{
    int n = 0;
    for (const DagEdge &e : edges_)
        n += e.dead ? 0 : 1;
    return n;
}

std::vector<int>
Dag::nodesOf(PrimOp op) const
{
    std::vector<int> out;
    for (int v = 0; v < numNodes(); v++)
        if (!nodes_[size_t(v)].dead && nodes_[size_t(v)].op == op)
            out.push_back(v);
    return out;
}

} // namespace lego
