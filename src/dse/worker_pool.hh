/**
 * @file
 * Fixed-size std::thread worker pool used by the DSE engine to fan
 * candidate evaluations out. Work items are indexed [0, n) and every
 * result is written to its own slot, so reductions are ordered and the
 * outcome is identical for any worker count (the determinism
 * requirement of the DSE engine).
 *
 * parallelFor is safe for CONCURRENT callers: each invocation is its
 * own job with its own claim counter, completion count, and error
 * slot, queued FIFO behind any jobs already in flight. Workers drain
 * the oldest unexhausted job first; the calling thread helps drain
 * its own job while it waits (so a pool is never idle under a
 * blocked caller, and the `threads <= 1` inline path is just the
 * degenerate "caller does everything" case). The serving loop relies
 * on this to overlap independent requests over one shared pool.
 */

#ifndef LEGO_DSE_WORKER_POOL_HH
#define LEGO_DSE_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lego
{
namespace dse
{

/**
 * Persistent pool of worker threads. A pool built with `threads <= 1`
 * spawns no threads and runs every job inline, so single-threaded
 * runs are plain serial execution (the reference for determinism
 * tests).
 */
class WorkerPool
{
  public:
    explicit WorkerPool(int threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Configured parallelism (>= 1). */
    int threads() const { return numThreads_; }

    /**
     * Run fn(i) for every i in [0, n). Indices are claimed atomically
     * by idle workers AND the calling thread; the call returns once
     * all n items completed. The first exception thrown by any item
     * of THIS job is rethrown here (concurrent jobs keep their errors
     * separate). May be called from any number of threads at once.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** parallelFor that collects fn(i) into an index-ordered vector. */
    template <class T, class F>
    std::vector<T>
    parallelMap(std::size_t n, F &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    /**
     * One parallelFor invocation. Each job carries its own claim
     * counter, completion count, and error slot, so any number of
     * jobs can be in flight: a worker draining one job can never
     * steal or corrupt indices of another, and one job's exception
     * never fails a concurrent caller.
     */
    struct Job
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0}; //!< Claim counter.
        std::size_t done = 0;             //!< Completed items (mu_).
        std::exception_ptr error;         //!< First thrown (mu_).
        /** Publication timestamp (obs::Tracer::nowNs) — each
         *  worker's pickup delay against it is the queue-wait
         *  metric. Observability only; never read by the job. */
        std::uint64_t postNs = 0;
    };

    void workerLoop();
    /** Claim-and-run items of `job` until exhausted; returns how
     *  many THIS thread completed. Exceptions land in job.error. */
    std::size_t runClaims(Job &job);
    /** Drop `job` from the FIFO once fully claimed (idempotent). */
    void removeJobLocked(const std::shared_ptr<Job> &job);

    int numThreads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable workCv_; //!< A job was queued / stopping.
    std::condition_variable doneCv_; //!< Some job made completion
                                     //!< progress (waiters check
                                     //!< their own job).
    std::deque<std::shared_ptr<Job>> jobs_; //!< FIFO, oldest first.
    bool stop_ = false;
};

} // namespace dse
} // namespace lego

#endif // LEGO_DSE_WORKER_POOL_HH
