/**
 * @file
 * Low-overhead, thread-safe tracing for the DSE engine and serving
 * loop. Spans and instant events are recorded into per-thread ring
 * buffers (single-writer, lock-free on the hot path: one relaxed
 * index bump and a struct store) and exported as Chrome
 * `trace_event` JSON, viewable in Perfetto (ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Three cost tiers, cheapest first:
 *
 *  - **compiled out** — building with -DLEGO_TRACE=0 (CMake option
 *    LEGO_TRACE=OFF) expands every LEGO_TRACE_* macro to nothing;
 *    the instrumentation has zero object-code footprint.
 *  - **disabled** (the default at runtime) — each span costs one
 *    relaxed atomic bool load and a branch; no clock is read, no
 *    event is stored.
 *  - **enabled** — one steady_clock read at span entry/exit plus a
 *    ~64-byte store into the caller's thread-local ring. Rings wrap
 *    (oldest events drop, counted), so tracing never allocates on
 *    the hot path after a thread's first event.
 *
 * Hard contract: tracing is observational only. It never feeds back
 * into scheduling, search, or composition — results are bit-identical
 * with tracing on, off, or compiled out, for any worker count
 * (pinned by tests/test_obs.cc).
 *
 * Event names/categories must be string literals (or otherwise
 * outlive the Tracer): events store the pointers, not copies.
 */

#ifndef LEGO_OBS_TRACE_HH
#define LEGO_OBS_TRACE_HH

/** Compile-time kill switch: -DLEGO_TRACE=0 removes every macro. */
#ifndef LEGO_TRACE
#define LEGO_TRACE 1
#endif

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lego
{
namespace obs
{

enum class EventType : std::uint8_t
{
    Complete, //!< Chrome "ph":"X" — a span with start + duration.
    Instant,  //!< Chrome "ph":"i" — a point event.
};

/** One trace record. Name/cat/argName point at static strings. */
struct TraceEvent
{
    const char *name = "";
    const char *cat = "";
    std::uint64_t tsNs = 0;  //!< steady_clock, ns since process start.
    std::uint64_t durNs = 0; //!< Complete events only.
    const char *argName = nullptr; //!< Optional single integer arg.
    std::uint64_t argValue = 0;
    EventType type = EventType::Complete;
};

/**
 * Process-wide trace collector. One instance() for the whole
 * process; recording threads get a thread-local ring buffer on their
 * first event. Export (toJson/writeJson) and clear() must run while
 * no thread is concurrently recording — in practice after
 * ServeLoop::drain()/shutdown() or between bench sweeps.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Runtime switch; the hot-path check recording threads take. */
    static bool enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    static void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Monotonic nanoseconds since the first call in this process. */
    static std::uint64_t nowNs();

    /** Record into the calling thread's ring (created on demand). */
    void record(const TraceEvent &ev);

    /** record() a Complete event with an explicit start/duration —
     *  used for queue-wait spans whose start predates the recording
     *  thread's involvement, and for deterministic tests. */
    void recordComplete(const char *name, const char *cat,
                        std::uint64_t tsNs, std::uint64_t durNs,
                        const char *argName = nullptr,
                        std::uint64_t argValue = 0);

    /** record() an Instant event stamped now. */
    void recordInstant(const char *name, const char *cat,
                       const char *argName = nullptr,
                       std::uint64_t argValue = 0);

    /** Events ever recorded (including ones later overwritten). */
    std::uint64_t recorded() const;
    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const;

    /**
     * Drop all buffered events (buffers stay registered). When
     * `ringCapacity` is nonzero every ring is also resized to that
     * many events — new threads inherit it too. Quiescent-only, like
     * export.
     */
    void clear(std::size_t ringCapacity = 0);

    /**
     * Chrome trace_event JSON: {"traceEvents": [...],
     * "displayTimeUnit": "ns", "otherData": {...}}. Timestamps are
     * microseconds relative to the earliest buffered event; thread
     * ids are renumbered 0, 1, ... by each thread's earliest event so
     * output is deterministic for deterministic event streams.
     * `metadataJson`, when nonempty, must be a JSON object and is
     * merged into "otherData" next to the drop counters.
     */
    std::string toJson(const std::string &metadataJson = "") const;

    /** toJson() to a file; false on I/O failure. */
    bool writeJson(const std::string &path,
                   const std::string &metadataJson = "") const;

  private:
    struct ThreadBuffer
    {
        std::vector<TraceEvent> ring;
        /** Monotonic write index; slot = idx % ring.size(). */
        std::atomic<std::uint64_t> next{0};
    };

    Tracer();
    ThreadBuffer *threadBuffer();

    mutable std::mutex mu_; //!< Guards registration + capacity.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    std::size_t ringCapacity_;

    static std::atomic<bool> enabled_;
};

/**
 * RAII span: stamps entry at construction, records one Complete
 * event at destruction. All work is skipped when tracing is disabled
 * at construction time (one relaxed load).
 */
class SpanGuard
{
  public:
    SpanGuard(const char *name, const char *cat,
              const char *argName = nullptr,
              std::uint64_t argValue = 0)
    {
        if (!Tracer::enabled())
            return;
        active_ = true;
        name_ = name;
        cat_ = cat;
        argName_ = argName;
        argValue_ = argValue;
        startNs_ = Tracer::nowNs();
    }

    ~SpanGuard()
    {
        if (!active_)
            return;
        Tracer::instance().recordComplete(
            name_, cat_, startNs_, Tracer::nowNs() - startNs_,
            argName_, argValue_);
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    bool active_ = false;
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    const char *argName_ = nullptr;
    std::uint64_t argValue_ = 0;
    std::uint64_t startNs_ = 0;
};

} // namespace obs
} // namespace lego

#define LEGO_OBS_CONCAT_(a, b) a##b
#define LEGO_OBS_CONCAT(a, b) LEGO_OBS_CONCAT_(a, b)

#if LEGO_TRACE

/** Span over the rest of the enclosing scope. */
#define LEGO_TRACE_SPAN(name, cat)                                    \
    ::lego::obs::SpanGuard LEGO_OBS_CONCAT(legoSpan_,                 \
                                           __LINE__)(name, cat)
/** Span with one integer argument (shown in the trace viewer). */
#define LEGO_TRACE_SPAN_ARG(name, cat, argName, argValue)             \
    ::lego::obs::SpanGuard LEGO_OBS_CONCAT(legoSpan_, __LINE__)(      \
        name, cat, argName,                                           \
        static_cast<std::uint64_t>(argValue))
/** Point event stamped now. */
#define LEGO_TRACE_INSTANT(name, cat)                                 \
    do {                                                              \
        if (::lego::obs::Tracer::enabled())                           \
            ::lego::obs::Tracer::instance().recordInstant(name, cat); \
    } while (0)
/** Complete event with explicit start/duration (queue-wait spans). */
#define LEGO_TRACE_COMPLETE(name, cat, tsNs, durNs, argName, argValue)\
    do {                                                              \
        if (::lego::obs::Tracer::enabled())                           \
            ::lego::obs::Tracer::instance().recordComplete(           \
                name, cat, tsNs, durNs, argName,                      \
                static_cast<std::uint64_t>(argValue));                \
    } while (0)

#else // LEGO_TRACE compiled out: every macro is a no-op.

#define LEGO_TRACE_SPAN(name, cat) ((void)0)
#define LEGO_TRACE_SPAN_ARG(name, cat, argName, argValue) ((void)0)
#define LEGO_TRACE_INSTANT(name, cat) ((void)0)
#define LEGO_TRACE_COMPLETE(name, cat, tsNs, durNs, argName,          \
                            argValue)                                 \
    ((void)0)

#endif // LEGO_TRACE

#endif // LEGO_OBS_TRACE_HH
