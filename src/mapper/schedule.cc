#include "mapper/schedule.hh"

#include <algorithm>

#include "dse/evaluator.hh"

namespace lego
{

// There is exactly ONE mapping-search implementation:
// dse::Evaluator (frontier-valued bound-pruned sweep, layer-class
// deduplication, spatial-efficiency memoization, optional cost
// cache). Both historical entry points are thin clients of it, and
// the scheduler composes per-layer frontiers under a model budget.

MappedLayer
mapLayer(const HardwareConfig &hw, const Layer &l)
{
    return dse::Evaluator().searchMapping(hw, l);
}

ScheduleResult
scheduleModel(const HardwareConfig &hw, const Model &m)
{
    return scheduleModel(hw, m, ComposeOptions{});
}

ScheduleResult
scheduleModel(const HardwareConfig &hw, const Model &m,
              const ComposeOptions &opt)
{
    dse::Evaluator ev;
    return composeSchedule(
        m, ev.mapModelFrontier(hw, m, opt.frontierK), opt);
}

namespace
{

/**
 * Indices into a frontier's point list forming the lower convex hull
 * of its (cycles, energy) curve, in ascending-cycles order. Frontier
 * points are strictly increasing in cycles and strictly decreasing
 * in energy (non-dominated + tie-deduped), so the hull starts at the
 * best-latency point and ends at the best-energy point, and the
 * marginal efficiency (energy saved per cycle added) of consecutive
 * hull steps is strictly decreasing — the property the greedy budget
 * sweep relies on for monotonicity.
 */
std::vector<std::size_t>
lowerHull(const std::vector<dse::FrontierPoint> &pts)
{
    std::vector<std::size_t> hull;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        auto x = [&](std::size_t j) {
            return double(pts[j].result.cycles);
        };
        auto y = [&](std::size_t j) { return pts[j].result.energyPj; };
        while (hull.size() >= 2) {
            std::size_t o = hull[hull.size() - 2];
            std::size_t a = hull[hull.size() - 1];
            double cross = (x(a) - x(o)) * (y(i) - y(o)) -
                           (y(a) - y(o)) * (x(i) - x(o));
            // <= 0: point a is on or above the o->i chord, so it is
            // not a hull vertex (collinear points are dropped, which
            // keeps step efficiencies strictly decreasing).
            if (cross > 0)
                break;
            hull.pop_back();
        }
        hull.push_back(i);
    }
    return hull;
}

/** One swap along a layer's hull: hull index from -> from+1. */
struct HullStep
{
    std::size_t layer = 0;
    std::size_t from = 0;    //!< Hull position before the step.
    double deltaCycles = 0;  //!< Total-latency increase (> 0).
    double deltaEnergyPj = 0;//!< Total-energy decrease (> 0).

    /** Energy saved per cycle added. */
    double efficiency() const { return deltaEnergyPj / deltaCycles; }
};

} // namespace

ScheduleResult
composeSchedule(const Model &m,
                std::vector<dse::MappingFrontier> fronts,
                const ComposeOptions &opt)
{
    if (fronts.size() != m.layers.size())
        panic("composeSchedule: frontier count does not match layer "
              "count");

    ScheduleResult out;
    const bool energyMode = opt.energyBudgetPj > 0;
    const bool latencyMode = !energyMode && opt.latencyBudgetCycles > 0;
    out.compose.budgeted = energyMode || latencyMode;

    if (!out.compose.budgeted) {
        // Unbudgeted fast path: every layer keeps its best-latency
        // point and no hull/step machinery is needed. This is the
        // per-candidate hot path of the hardware DSE (evaluate() ->
        // mapModel() at K = 1), so it stays a plain accumulate loop.
        out.perLayer.reserve(m.layers.size());
        for (std::size_t i = 0; i < m.layers.size(); ++i) {
            if (fronts[i].empty())
                panic("composeSchedule: empty frontier for layer " +
                      m.layers[i].name);
            out.compose.frontierPoints += fronts[i].size();
            const Layer &l = m.layers[i];
            MappedLayer ml;
            ml.mapping = fronts[i].best().mapping;
            ml.result = fronts[i].best().result;
            accumulate(out.summary, ml.result, l.isTensorOp(),
                       l.repeat);
            out.perLayer.push_back(ml);
        }
        out.perLayerFrontier = std::move(fronts);
        return out;
    }

    // Per-layer hulls plus the unconstrained extreme selection:
    // best-latency (hull front) for the energy-budget mode,
    // best-energy (hull back) under a latency budget.
    std::vector<std::vector<std::size_t>> hulls(fronts.size());
    std::vector<std::size_t> pick(fronts.size(), 0); //!< Hull position.
    double totalCycles = 0, totalEnergy = 0;
    std::vector<HullStep> steps;
    for (std::size_t i = 0; i < fronts.size(); ++i) {
        if (fronts[i].empty())
            panic("composeSchedule: empty frontier for layer " +
                  m.layers[i].name);
        out.compose.frontierPoints += fronts[i].size();
        hulls[i] = lowerHull(fronts[i].points());
        pick[i] = latencyMode ? hulls[i].size() - 1 : 0;
        const double rep = double(m.layers[i].repeat);
        const dse::FrontierPoint &sel =
            fronts[i].points()[hulls[i][pick[i]]];
        totalCycles += rep * double(sel.result.cycles);
        totalEnergy += rep * sel.result.energyPj;
        for (std::size_t h = 0; h + 1 < hulls[i].size(); ++h) {
            const dse::FrontierPoint &a = fronts[i].points()[hulls[i][h]];
            const dse::FrontierPoint &b =
                fronts[i].points()[hulls[i][h + 1]];
            HullStep s;
            s.layer = i;
            s.from = h;
            s.deltaCycles =
                rep * double(b.result.cycles - a.result.cycles);
            s.deltaEnergyPj = rep * (a.result.energyPj - b.result.energyPj);
            steps.push_back(s);
        }
    }

    if (energyMode && totalEnergy > opt.energyBudgetPj) {
        // Greedy down the pooled steps by marginal efficiency. Within
        // a layer efficiencies strictly decrease along the hull, so
        // the global order respects per-layer step order, and a
        // tighter budget applies a strict superset of a looser
        // budget's steps (latency monotone in the budget).
        std::sort(steps.begin(), steps.end(),
                  [](const HullStep &a, const HullStep &b) {
                      if (a.efficiency() != b.efficiency())
                          return a.efficiency() > b.efficiency();
                      if (a.layer != b.layer)
                          return a.layer < b.layer;
                      return a.from < b.from;
                  });
        for (const HullStep &s : steps) {
            if (totalEnergy <= opt.energyBudgetPj)
                break;
            pick[s.layer] = s.from + 1;
            totalCycles += s.deltaCycles;
            totalEnergy -= s.deltaEnergyPj;
            ++out.compose.swaps;
        }
        out.compose.feasible = totalEnergy <= opt.energyBudgetPj;
    } else if (latencyMode && totalCycles > opt.latencyBudgetCycles) {
        // Mirror image: walk hulls backwards, cheapest energy per
        // cycle saved first (= lowest forward efficiency first).
        std::sort(steps.begin(), steps.end(),
                  [](const HullStep &a, const HullStep &b) {
                      if (a.efficiency() != b.efficiency())
                          return a.efficiency() < b.efficiency();
                      if (a.layer != b.layer)
                          return a.layer < b.layer;
                      return a.from > b.from;
                  });
        for (const HullStep &s : steps) {
            if (totalCycles <= opt.latencyBudgetCycles)
                break;
            pick[s.layer] = s.from;
            totalCycles -= s.deltaCycles;
            totalEnergy += s.deltaEnergyPj;
            ++out.compose.swaps;
        }
        out.compose.feasible = totalCycles <= opt.latencyBudgetCycles;
    }

    // Ordered reduction: aggregate in layer order regardless of how
    // the frontiers were produced.
    out.perLayer.reserve(m.layers.size());
    for (std::size_t i = 0; i < m.layers.size(); ++i) {
        const Layer &l = m.layers[i];
        const dse::FrontierPoint &sel =
            fronts[i].points()[hulls[i][pick[i]]];
        MappedLayer ml;
        ml.mapping = sel.mapping;
        ml.result = sel.result;
        accumulate(out.summary, ml.result, l.isTensorOp(), l.repeat);
        out.perLayer.push_back(ml);
    }
    out.perLayerFrontier = std::move(fronts);
    return out;
}

bool
sameSchedule(const ScheduleResult &a, const ScheduleResult &b)
{
    if (a.perLayer.size() != b.perLayer.size())
        return false;
    if (a.summary.totalCycles != b.summary.totalCycles ||
        a.summary.totalEnergyPj != b.summary.totalEnergyPj ||
        a.summary.dramBytes != b.summary.dramBytes)
        return false;
    for (std::size_t i = 0; i < a.perLayer.size(); ++i) {
        const MappedLayer &x = a.perLayer[i], &y = b.perLayer[i];
        if (x.mapping.dataflow != y.mapping.dataflow ||
            x.mapping.tm != y.mapping.tm ||
            x.mapping.tn != y.mapping.tn ||
            x.mapping.tk != y.mapping.tk ||
            x.result.cycles != y.result.cycles ||
            x.result.energyPj != y.result.energyPj ||
            x.result.utilization != y.result.utilization ||
            x.result.dramBytes != y.result.dramBytes)
            return false;
    }
    return true;
}

std::vector<ScheduleResult>
composeZoo(const std::vector<const Model *> &zoo,
           std::vector<std::vector<dse::MappingFrontier>> fronts,
           const ComposeOptions &opt)
{
    if (fronts.size() != zoo.size())
        panic("composeZoo: frontier-set count does not match zoo "
              "size");
    std::vector<ScheduleResult> out;
    out.reserve(zoo.size());
    for (std::size_t mi = 0; mi < zoo.size(); ++mi)
        out.push_back(
            composeSchedule(*zoo[mi], std::move(fronts[mi]), opt));
    return out;
}

} // namespace lego
