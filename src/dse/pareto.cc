#include "dse/pareto.hh"

namespace lego
{
namespace dse
{

bool
dominates(const DsePoint &a, const DsePoint &b)
{
    return ParetoArchive::dominates(a, b);
}

std::vector<DsePoint>
ParetoArchive::sorted() const
{
    // points() already holds the (latency, energy, area, id) order —
    // the container's sort invariant IS the published order.
    return points();
}

namespace
{

template <class Less>
const DsePoint *
extreme(const std::vector<DsePoint> &pts, Less less)
{
    const DsePoint *best = nullptr;
    for (const DsePoint &p : pts)
        if (!best || less(p, *best))
            best = &p;
    return best;
}

} // namespace

const DsePoint *
ParetoArchive::bestLatency() const
{
    return extreme(points(), [](const DsePoint &a, const DsePoint &b) {
        return a.latencyCycles != b.latencyCycles
                   ? a.latencyCycles < b.latencyCycles
                   : a.id < b.id;
    });
}

const DsePoint *
ParetoArchive::bestEnergy() const
{
    return extreme(points(), [](const DsePoint &a, const DsePoint &b) {
        return a.energyPj != b.energyPj ? a.energyPj < b.energyPj
                                        : a.id < b.id;
    });
}

const DsePoint *
ParetoArchive::bestArea() const
{
    return extreme(points(), [](const DsePoint &a, const DsePoint &b) {
        return a.areaMm2 != b.areaMm2 ? a.areaMm2 < b.areaMm2
                                      : a.id < b.id;
    });
}

const DsePoint *
ParetoArchive::bestUnderLatency(double latencyBound,
                                int objective) const
{
    auto metric = [objective](const DsePoint &p) {
        switch (objective) {
          case 1: return p.areaMm2;
          case 2: return p.powerMw;
          default: return p.energyPj;
        }
    };
    const DsePoint *best = nullptr;
    for (const DsePoint &p : points()) {
        if (p.latencyCycles > latencyBound)
            continue;
        if (!best || metric(p) < metric(*best) ||
            (metric(p) == metric(*best) && p.id < best->id))
            best = &p;
    }
    return best;
}

} // namespace dse
} // namespace lego
