/**
 * @file
 * ADG -> DAG translation (the paper's codegen pass, Section V).
 *
 * Lowers the FU-level architecture into primitives:
 *
 *  - One mixed-radix Counter (the single control unit of Section
 *    III-D) distributing the local timestamp to per-FU Taps; the
 *    per-config tap delay equals the control skew t_bias = s . c.
 *  - AddrGen + MemRead/MemWrite at every data node; addresses are
 *    affine in the timestamp digits, so switching dataflows only
 *    reprograms matrix constants (paper Section V).
 *  - Per-FU operand Mux (the operand register point): selects among
 *    the memory port and peer forwarding edges per config; peer
 *    edges carry per-config programmed delays (direct skew or FIFO).
 *  - The compute body (Mul/Shl/Max chains per the FU OpKind) and a
 *    partial-sum Add cascade combining incoming spatial-reduction
 *    edges (later collapsed by reduction-tree extraction).
 *  - Output commits via accumulating MemWrite (in-place read-modify-
 *    write in the output buffer, as the PPU sharing demands).
 */

#ifndef LEGO_BACKEND_CODEGEN_HH
#define LEGO_BACKEND_CODEGEN_HH

#include "backend/dag.hh"
#include "frontend/adg.hh"

namespace lego
{

/** The DAG plus bindings needed by the interpreter and reports. */
struct CodegenResult
{
    Dag dag;
    int counter = -1;

    /** [port][fu] operand mux node (-1 when port unused). */
    std::vector<std::vector<int>> operandMux;
    /** [port][fu] memory read port (-1 when fu is not a data node). */
    std::vector<std::vector<int>> memRead;
    /** [fu] final partial-sum node. */
    std::vector<int> psum;
    /** [fu] output write port (-1 when fu never commits). */
    std::vector<int> memWrite;

    CodegenResult() : dag(0) {}
};

/** Lower an ADG to the primitive-level DAG. */
CodegenResult codegen(const Adg &adg);

} // namespace lego

#endif // LEGO_BACKEND_CODEGEN_HH
