/**
 * @file
 * Tests for the serving subsystem (src/serve): request-line parsing
 * and the model registry, admission ordering and drain/shutdown
 * semantics, warm-vs-cold replay identity (same schedules
 * bit-for-bit with a >= 90% warm frontier hit rate and zero warm
 * model evaluations), replay determinism for 1 vs N workers, and the
 * CostCache::save/load failure paths serving makes routine
 * (unwritable cache paths, truncated or oversized v2 files).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "lego.hh"

namespace lego
{
namespace
{

using dse::CostCache;
using serve::Objective;
using serve::ServeLoop;
using serve::ServeOptions;
using serve::ServeRequest;
using serve::ServeResponse;

/** A small, fast trace over the little registry networks: classical
 *  K = 1, frontier K = 4, and budgeted requests (per-model budgets
 *  loose enough to always be meetable). */
std::vector<ServeRequest>
tinyTrace()
{
    auto mk = [](const char *id, std::vector<std::string> models,
                 Objective obj, double budget, std::size_t k) {
        ServeRequest r;
        r.id = id;
        r.models = std::move(models);
        r.objective = obj;
        r.budget = budget;
        r.frontierK = k;
        return r;
    };
    std::vector<ServeRequest> t;
    t.push_back(mk("lenet-classic", {"lenet"}, Objective::Latency,
                   0, 1));
    t.push_back(mk("alex-classic", {"alexnet"}, Objective::Latency,
                   0, 1));
    t.push_back(mk("pair-k4", {"lenet", "alexnet"},
                   Objective::Latency, 0, 4));
    t.push_back(mk("lenet-k4", {"lenet"}, Objective::Latency, 0, 4));
    t.push_back(
        mk("alex-minenergy", {"alexnet"}, Objective::Energy, 0, 4));
    t.push_back(mk("pair-ebudget", {"lenet", "alexnet"},
                   Objective::Latency, 1e18, 4));
    return t;
}

using serve::sameResponse;

std::vector<ServeResponse>
replay(const std::vector<ServeRequest> &trace, int threads,
       const std::string &cachePath = std::string(),
       bool *flushOk = nullptr)
{
    ServeOptions opt;
    opt.dse.threads = threads;
    opt.dse.cachePath = cachePath;
    ServeLoop loop(opt);
    for (const ServeRequest &req : trace)
        loop.submit(req);
    loop.drain();
    std::vector<ServeResponse> responses = loop.responses();
    const bool flushed = loop.shutdown();
    if (flushOk)
        *flushOk = flushed;
    return responses;
}

TEST(ServeRequestParse, FullRequestAndDefaults)
{
    ServeRequest req;
    std::string err;
    ASSERT_TRUE(parseRequest(
        "{\"id\": \"r1\", \"models\": [\"lenet\", \"bert\"], "
        "\"objective\": \"energy\", \"budget\": 2.5e7, \"k\": 8}",
        &req, &err))
        << err;
    EXPECT_EQ(req.id, "r1");
    ASSERT_EQ(req.models.size(), 2u);
    EXPECT_EQ(req.models[0], "lenet");
    EXPECT_EQ(req.models[1], "bert");
    EXPECT_EQ(req.objective, Objective::Energy);
    EXPECT_DOUBLE_EQ(req.budget, 2.5e7);
    EXPECT_EQ(req.frontierK, 8u);

    // Everything but "models" is defaulted; whitespace is free-form
    // and the objective is case-insensitive.
    ASSERT_TRUE(parseRequest("  { \"models\" :[ \"lenet\" ] } ",
                             &req, &err))
        << err;
    EXPECT_TRUE(req.id.empty());
    EXPECT_EQ(req.objective, Objective::Latency);
    EXPECT_DOUBLE_EQ(req.budget, 0);
    EXPECT_EQ(req.frontierK, 1u);
    ASSERT_TRUE(parseRequest("{\"models\": [\"lenet\"], "
                             "\"objective\": \"ENERGY\"}",
                             &req, &err))
        << err;
    EXPECT_EQ(req.objective, Objective::Energy);
}

TEST(ServeRequestParse, FormatRoundTrip)
{
    // Include a request whose strings need escaping: the canonical
    // serialization must parse back identically even then.
    std::vector<ServeRequest> reqs = serve::demoTrace();
    ServeRequest tricky;
    tricky.id = "quo\"te\\slash";
    tricky.models = {"lenet"};
    reqs.push_back(tricky);
    ServeRequest precise; // Budget needing > 6 significant digits.
    precise.models = {"lenet"};
    precise.budget = 12345678.9;
    reqs.push_back(precise);
    for (const ServeRequest &req : reqs) {
        ServeRequest back;
        std::string err;
        ASSERT_TRUE(
            parseRequest(serve::formatRequest(req), &back, &err))
            << err;
        EXPECT_EQ(back.id, req.id);
        EXPECT_EQ(back.models, req.models);
        EXPECT_EQ(back.objective, req.objective);
        EXPECT_DOUBLE_EQ(back.budget, req.budget);
        EXPECT_EQ(back.frontierK, req.frontierK);
    }
}

TEST(ServeRequestParse, MalformedRequestsAreLoudErrors)
{
    const char *bad[] = {
        "",                                      // No object.
        "{\"models\": [\"lenet\"]",              // Unterminated.
        "{\"models\": []}",                      // Empty zoo.
        "{\"objective\": \"latency\"}",          // No models.
        "{\"models\": [\"lenet\"], \"mode\": \"x\"}", // Unknown key.
        "{\"models\": [\"lenet\"], \"objective\": \"both\"}",
        "{\"models\": [\"lenet\"], \"budget\": -1}",
        "{\"models\": [\"lenet\"], \"budget\": \"big\"}",
        "{\"models\": [\"lenet\"], \"budget\": nan}",
        "{\"models\": [\"lenet\"], \"budget\": inf}",
        "{\"models\": [\"lenet\"], \"k\": 0}",
        "{\"models\": [\"lenet\"], \"k\": 1.5}",
        "{\"models\": [\"lenet\"], \"k\": 1e300}", // Out of range.
        "{\"models\": [\"lenet\"], \"k\": nan}",
        "{\"models\": [\"lenet\"]} trailing",
        "{\"models\": [\"lenet\" \"bert\"]}",    // Missing comma.
    };
    for (const char *line : bad) {
        ServeRequest req;
        std::string err;
        EXPECT_FALSE(parseRequest(line, &req, &err)) << line;
        EXPECT_FALSE(err.empty()) << line;
    }
}

TEST(ServeRequestParse, TraceSkipsCommentsAndReportsLineNumbers)
{
    std::istringstream good(
        "# header comment\n"
        "\n"
        "{\"models\": [\"lenet\"]}\n"
        "   \n"
        "{\"models\": [\"bert\"], \"k\": 2}\n");
    std::vector<ServeRequest> trace;
    std::string err;
    ASSERT_TRUE(serve::parseTrace(good, &trace, &err)) << err;
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].models[0], "lenet");
    EXPECT_EQ(trace[1].frontierK, 2u);

    std::istringstream bad("{\"models\": [\"lenet\"]}\n"
                           "{\"models\": [}\n");
    trace.clear();
    EXPECT_FALSE(serve::parseTrace(bad, &trace, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;

    EXPECT_FALSE(serve::parseTraceFile(
        testing::TempDir() + "does_not_exist.jsonl", &trace, &err));
}

TEST(ServeRequestParse, ModelRegistry)
{
    const std::vector<std::string> names =
        serve::modelRegistryNames();
    ASSERT_FALSE(names.empty());
    for (const std::string &name : names) {
        Model m;
        EXPECT_TRUE(serve::lookupModel(name, &m)) << name;
        EXPECT_FALSE(m.layers.empty()) << name;
    }
    Model m;
    EXPECT_TRUE(serve::lookupModel("LeNet", &m)); // Case-folded.
    EXPECT_FALSE(serve::lookupModel("resnet51", &m));
}

TEST(ServeRequestParse, CheckedInTraceMatchesDemoTrace)
{
    // The compiled-in demo trace gates bench_dse_perf's serve_replay
    // sweep; the checked-in jsonl gates CI's serve-smoke. They must
    // be the SAME workload, or the two gates silently diverge.
    // Regenerate the file with `lego_serve --print-trace` after
    // editing demoTrace().
    std::vector<ServeRequest> fromFile;
    std::string err;
    bool found = false;
    for (const char *path : {"examples/serve_trace.jsonl",
                             "../examples/serve_trace.jsonl"}) {
        if (serve::parseTraceFile(path, &fromFile, &err)) {
            found = true;
            break;
        }
    }
    if (!found)
        GTEST_SKIP() << "serve_trace.jsonl not reachable from cwd";
    const std::vector<ServeRequest> demo = serve::demoTrace();
    ASSERT_EQ(fromFile.size(), demo.size());
    for (std::size_t i = 0; i < demo.size(); ++i) {
        EXPECT_EQ(fromFile[i].id, demo[i].id) << i;
        EXPECT_EQ(fromFile[i].models, demo[i].models) << i;
        EXPECT_EQ(fromFile[i].objective, demo[i].objective) << i;
        EXPECT_DOUBLE_EQ(fromFile[i].budget, demo[i].budget) << i;
        EXPECT_EQ(fromFile[i].frontierK, demo[i].frontierK) << i;
    }
}

TEST(ServeLoop, AdmissionOrderingAndErrorIsolation)
{
    ServeOptions opt;
    opt.dse.threads = 2;
    ServeLoop loop(opt);

    ServeRequest ok1;
    ok1.models = {"lenet"};
    ServeRequest unknown;
    unknown.id = "nope";
    unknown.models = {"lenet", "no-such-model"};
    ServeRequest ok2;
    ok2.models = {"lenet"};
    ok2.frontierK = 2;

    EXPECT_EQ(loop.submit(ok1), 0u);
    EXPECT_EQ(loop.submit(unknown), 1u);
    EXPECT_EQ(loop.submitLine("{\"models\": [}"), 2u);
    EXPECT_EQ(loop.submit(ok2), 3u);
    loop.drain();

    std::vector<ServeResponse> rs = loop.responses();
    ASSERT_EQ(rs.size(), 4u);
    for (std::size_t i = 0; i < rs.size(); ++i)
        EXPECT_EQ(rs[i].seq, i);
    EXPECT_TRUE(rs[0].ok);
    EXPECT_EQ(rs[0].id, "#0"); // Unset ids default to the sequence.
    // A bad model or a bad line answers an error in place but never
    // poisons its neighbors.
    EXPECT_FALSE(rs[1].ok);
    EXPECT_NE(rs[1].error.find("no-such-model"), std::string::npos);
    EXPECT_TRUE(rs[1].schedules.empty());
    EXPECT_FALSE(rs[2].ok);
    EXPECT_NE(rs[2].error.find("parse error"), std::string::npos);
    EXPECT_TRUE(rs[3].ok);
    ASSERT_EQ(rs[3].schedules.size(), 1u);

    // drain() is reentrant: more work after a drain still serves.
    EXPECT_EQ(loop.submit(ok1), 4u);
    loop.drain();
    EXPECT_EQ(loop.responses().size(), 5u);
    EXPECT_TRUE(loop.responses()[4].ok);

    // The classical request equals the classical scheduler.
    Model lenet = makeLeNet();
    ScheduleResult ref = scheduleModel(HardwareConfig{}, lenet);
    EXPECT_TRUE(sameSchedule(rs[0].schedules[0], ref));
}

TEST(ServeLoop, ShutdownStopsAdmissionAndIsIdempotent)
{
    ServeOptions opt;
    ServeLoop loop(opt);
    ServeRequest req;
    req.models = {"lenet"};
    EXPECT_EQ(loop.submit(req), 0u);
    EXPECT_TRUE(loop.accepting());
    EXPECT_TRUE(loop.shutdown()); // No cachePath: nothing to flush.
    EXPECT_FALSE(loop.accepting());
    // Everything admitted before shutdown was answered.
    EXPECT_EQ(loop.responses().size(), 1u);
    EXPECT_TRUE(loop.responses()[0].ok);
    // Post-shutdown submissions are rejected, not queued.
    EXPECT_EQ(loop.submit(req), ServeLoop::kRejected);
    EXPECT_EQ(loop.submitLine("{\"models\": [\"lenet\"]}"),
              ServeLoop::kRejected);
    EXPECT_EQ(loop.responses().size(), 1u);
    EXPECT_TRUE(loop.shutdown()); // Idempotent.

    loop.clearResponses();
    EXPECT_TRUE(loop.responses().empty());
}

TEST(ServeLoop, WarmColdIdentityAndFrontierHitRate)
{
    const std::string path =
        testing::TempDir() + "lego_serve_warm_cold.cache";
    std::remove(path.c_str());
    const std::vector<ServeRequest> trace = tinyTrace();

    bool flushOk = false;
    std::vector<ServeResponse> cold = replay(trace, 1, path,
                                             &flushOk);
    EXPECT_TRUE(flushOk); // The cache file must have been written.
    std::vector<ServeResponse> warm = replay(trace, 1, path);

    ASSERT_EQ(cold.size(), trace.size());
    ASSERT_EQ(warm.size(), trace.size());
    std::uint64_t warmEvals = 0, warmFrontHits = 0,
                  warmFrontLookups = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_TRUE(cold[i].ok) << cold[i].error;
        // Warm answers are the cold answers, bit for bit.
        EXPECT_TRUE(sameResponse(cold[i], warm[i])) << "request " << i;
        warmEvals += warm[i].stats.dse.modelEvals;
        warmFrontHits += warm[i].stats.dse.frontHits;
        warmFrontLookups += warm[i].stats.dse.frontHits +
                            warm[i].stats.dse.frontMisses;
    }
    // The serving headline: a warm replay re-evaluates nothing and
    // serves its frontier lookups out of the persisted memo.
    EXPECT_EQ(warmEvals, 0u);
    ASSERT_GT(warmFrontLookups, 0u);
    EXPECT_GE(double(warmFrontHits) / double(warmFrontLookups),
              0.90);
    std::remove(path.c_str());
}

TEST(ServeLoop, ReplayDeterministicForAnyWorkerCount)
{
    const std::vector<ServeRequest> trace = tinyTrace();
    std::vector<ServeResponse> one = replay(trace, 1);
    std::vector<ServeResponse> many = replay(trace, 4);
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_TRUE(sameResponse(one[i], many[i])) << "request " << i;
}

TEST(ServeLoop, UnwritableCachePathFailsFlushNotServing)
{
    ServeOptions opt;
    opt.dse.cachePath =
        "/nonexistent-serve-dir/sub/lego_serve.cache";
    ServeLoop loop(opt);
    ServeRequest req;
    req.models = {"lenet"};
    loop.submit(req);
    loop.drain();
    EXPECT_TRUE(loop.responses()[0].ok); // Serving was unaffected...
    EXPECT_FALSE(loop.shutdown());       // ...but the flush failed.
    EXPECT_FALSE(loop.shutdown());       // Sticky status.
}

/** A cache holding both scalar and frontier entries, for the
 *  persistence failure-path tests. */
void
fillCache(CostCache *cache)
{
    HardwareConfig hw;
    Model m = makeLeNet();
    dse::Evaluator ev(cache);
    ev.mapModel(hw, m);                // Scalar entries.
    ev.mapModelFrontier(hw, m, 4);     // Frontier entries.
    ASSERT_GT(cache->size(), 0u);
    ASSERT_GT(cache->frontierCount(), 0u);
}

TEST(CostCachePersistence, SaveFailsOnUnwritablePaths)
{
    CostCache cache;
    fillCache(&cache);
    // Unreachable directory: the temp-file open fails.
    EXPECT_FALSE(cache.save("/nonexistent-serve-dir/sub/cache.bin"));
    // Target is a directory: the final rename fails, and the temp
    // file is cleaned up rather than left behind.
    const std::string dirTarget = testing::TempDir();
    EXPECT_FALSE(cache.save(dirTarget));
    std::ifstream tmp(dirTarget + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST(CostCachePersistence, TruncatedAndPaddedFilesAreRejected)
{
    const std::string path =
        testing::TempDir() + "lego_serve_truncated.cache";
    CostCache cache;
    fillCache(&cache);
    ASSERT_TRUE(cache.save(path));

    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        bytes = ss.str();
    }
    ASSERT_GT(bytes.size(), 64u);

    // Truncations at every interesting boundary: inside the header,
    // inside the scalar section, at the frontier-count word, inside
    // a frontier entry, and one word short of complete. All must be
    // rejected wholesale, leaving the cache untouched.
    const std::size_t cuts[] = {
        8, 24, 32 + 7, bytes.size() / 2, bytes.size() - 9,
        bytes.size() - sizeof(std::uint64_t)};
    for (std::size_t cut : cuts) {
        ASSERT_LT(cut, bytes.size());
        std::ofstream(path, std::ios::binary | std::ios::trunc)
            .write(bytes.data(), std::streamsize(cut));
        CostCache fresh;
        EXPECT_FALSE(fresh.load(path)) << "cut at " << cut;
        EXPECT_EQ(fresh.size(), 0u) << "cut at " << cut;
        EXPECT_EQ(fresh.frontierCount(), 0u) << "cut at " << cut;
    }

    // Trailing bytes past the declared sections are corruption too.
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write((bytes + std::string(8, '\0')).data(),
               std::streamsize(bytes.size() + 8));
    CostCache padded;
    EXPECT_FALSE(padded.load(path));
    EXPECT_EQ(padded.size(), 0u);

    // The untampered bytes still load — the rejections above were
    // about the tampering, not the file.
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), std::streamsize(bytes.size()));
    CostCache intact;
    EXPECT_TRUE(intact.load(path));
    EXPECT_EQ(intact.size(), cache.size());
    EXPECT_EQ(intact.frontierCount(), cache.frontierCount());
    std::remove(path.c_str());
}

} // namespace
} // namespace lego
